//! Bounded-variable revised simplex over a sparse column representation.
//!
//! The model is brought into the computational standard form
//!
//! ```text
//!   minimise cᵀx   subject to   A·x_struct + s = b,   l ≤ x ≤ u
//! ```
//!
//! with one *logical* (slack) variable per row: `s ≥ 0` for `<=` rows,
//! `s ≤ 0` for `>=` rows and `s = 0` for `=` rows. Variables keep their
//! bounds natively — no shifting, mirroring or free-variable splitting as in
//! the old dense tableau — and nonbasic variables sit at one of their finite
//! bounds (free nonbasics sit at zero).
//!
//! Three engines share the factorised basis ([`crate::basis`]):
//!
//! * **primal phase 1/2** — a composite-objective primal simplex: while any
//!   basic variable violates its bounds the objective is the (piecewise
//!   linear) sum of infeasibilities, afterwards the true costs; the ratio
//!   test lets infeasible basics travel to their violated bound,
//! * **dual simplex** — entered when a warm-start basis is dual feasible,
//!   which is the cheap path after branch-and-bound bound changes or after
//!   appending lazily separated constraint rows,
//! * **bound flips** — nonbasic variables with two finite bounds move
//!   bound-to-bound without a basis change.
//!
//! Warm starts are first-class: [`solve`] accepts the [`Basis`] returned by
//! a previous solve (possibly of a *smaller* model — new variables enter at
//! a bound, new rows enter with their logical basic) and re-factorises it,
//! falling back to the all-logical cold basis when the warm basis is stale
//! or singular.

use crate::basis::Factorization;
use crate::problem::{ConstraintOp, LinearProgram, LpError, LpSolution, Sense};
use crate::sparse::CscMatrix;
use crate::TOLERANCE;

/// Reduced-cost (dual) tolerance.
const DUAL_TOL: f64 = 1e-7;
/// Minimum pivot magnitude in the ratio tests.
const RATIO_PIVOT_TOL: f64 = 1e-9;
/// A step below this is treated as degenerate for stall detection.
const DEGENERATE_STEP: f64 = 1e-10;
/// Residual bound violation accepted when the phase-1 objective stalls at a
/// numerically tiny value.
const ACCEPT_INFEAS: f64 = 1e-6;

/// Status of one variable relative to the current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
    Free,
}

/// A warm-start basis: the basic variable of every row plus the bound
/// status of every nonbasic variable.
///
/// Returned by [`LinearProgram::solve_warm`] and accepted back by it — also
/// for a *grown* model (more variables and/or more constraints than the
/// solve that produced it): new structural variables start at a bound, new
/// rows start with their logical variable basic, which is exactly what makes
/// re-solving after a branching bound change or a lazily separated
/// constraint cheap (dual simplex from the parent optimum).
///
/// The basis additionally carries the **LU factorisation** it was produced
/// with (shared, behind an [`Arc`]): variable-bound changes — the only
/// difference between branch-and-bound parent and child LPs — do not touch
/// the basis matrix, so a warm re-solve of a model with the *identical
/// constraint matrix* (verified by fingerprint) can skip the from-scratch
/// refactorisation entirely. That fixed cost, not the pivot count, used to
/// dominate warm node solves.
#[derive(Debug, Clone)]
pub struct Basis {
    statuses: Vec<VarStatus>,
    basic: Vec<usize>,
    num_structural: usize,
    /// Cached factorisation of this basis (valid only for the matrix with
    /// the matching fingerprint).
    factor: Option<std::sync::Arc<Factorization>>,
    /// Fingerprint of the constraint matrix the factorisation belongs to.
    matrix_fingerprint: u64,
}

impl PartialEq for Basis {
    fn eq(&self, other: &Self) -> bool {
        // The factorisation cache is an acceleration detail, not identity.
        self.statuses == other.statuses
            && self.basic == other.basic
            && self.num_structural == other.num_structural
    }
}

impl Basis {
    /// Number of structural variables of the model this basis belongs to.
    pub fn num_structural(&self) -> usize {
        self.num_structural
    }

    /// Number of constraint rows of the model this basis belongs to.
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }
}

/// Bound status of a nonbasic variable in a [`TableauRow`] entry.
///
/// Needed by cut generators to shift nonbasic variables to their bound
/// (`x̄ = x − l` at the lower bound, `x̄ = u − x` at the upper) before
/// applying an integer rounding argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonbasicStatus {
    /// Sitting at its (finite) lower bound.
    AtLower,
    /// Sitting at its (finite) upper bound.
    AtUpper,
    /// Free nonbasic (no finite bound; value 0).
    Free,
}

/// One nonbasic entry `ᾱ_j` of a simplex tableau row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableauEntry {
    /// Variable index: `< num_vars` for structural variables, `num_vars + r`
    /// for the logical (slack) variable of constraint row `r`.
    pub var: usize,
    /// Tableau coefficient `ᾱ_j = (eᵣᵀB⁻¹)·a_j`.
    pub coeff: f64,
    /// Which bound the nonbasic variable currently sits at.
    pub status: NonbasicStatus,
}

/// A row of the simplex tableau `x_B(r) + Σ_j ᾱ_j·x_j = value + Σ_j ᾱ_j·x̄_j*`
/// for the basis returned by [`crate::LinearProgram::solve_warm`].
///
/// `value` is the current value of the basic variable; entries cover every
/// *nonbasic, non-fixed* variable (fixed variables — equal bounds — are
/// omitted: they can never move, so they contribute nothing to a cut).
#[derive(Debug, Clone, PartialEq)]
pub struct TableauRow {
    /// The (structural) variable basic in this row.
    pub basic_var: usize,
    /// Current value of the basic variable (`b̄ᵣ`).
    pub value: f64,
    /// Nonbasic coefficients of the row.
    pub entries: Vec<TableauEntry>,
}

/// Outcome of the dual-simplex engine.
enum DualOutcome {
    /// Primal feasibility reached (and dual feasibility maintained).
    Feasible,
    /// Dual feasibility was lost or the engine stalled; run the primal.
    Abandoned,
}

struct Solver<'a> {
    lp: &'a LinearProgram,
    n: usize,
    m: usize,
    /// Minimisation costs over structural + logical variables.
    cost: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    matrix: CscMatrix,
    rhs: Vec<f64>,
    statuses: Vec<VarStatus>,
    basic: Vec<usize>,
    factor: Factorization,
    /// FNV-1a fingerprint of `(n, m, matrix)` — the validity domain of a
    /// cached factorisation (bounds and objective deliberately excluded:
    /// they do not enter the basis matrix).
    fingerprint: u64,
    /// Basic values by elimination position (parallel to `basic`).
    x_basic: Vec<f64>,
    iterations: usize,
    limit: usize,
    /// Wall-clock deadline, checked periodically inside the pivot loops.
    deadline: Option<std::time::Instant>,
    /// Consecutive degenerate steps; beyond a threshold the pricing falls
    /// back to Bland's rule.
    stall: usize,
}

impl<'a> Solver<'a> {
    fn new(lp: &'a LinearProgram, warm: Option<&Basis>) -> Result<Solver<'a>, LpError> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let sign = match lp.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        let mut cost = Vec::with_capacity(n + m);
        for &c in lp.objective() {
            cost.push(sign * c);
        }
        cost.resize(n + m, 0.0);

        let mut lower = Vec::with_capacity(n + m);
        let mut upper = Vec::with_capacity(n + m);
        lower.extend_from_slice(lp.lower_bounds());
        upper.extend_from_slice(lp.upper_bounds());
        let mut rhs = Vec::with_capacity(m);
        for con in lp.constraints() {
            rhs.push(con.rhs);
            match con.op {
                ConstraintOp::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                ConstraintOp::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                ConstraintOp::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }

        let columns: Vec<Vec<(usize, f64)>> = {
            let mut cols = vec![Vec::new(); n];
            for (r, con) in lp.constraints().iter().enumerate() {
                for &(v, c) in &con.coeffs {
                    cols[v].push((r, c));
                }
            }
            cols
        };
        let matrix = CscMatrix::from_columns(m, &columns);
        let fingerprint = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |x: u64| {
                h ^= x;
                h = h.wrapping_mul(0x100_0000_01b3);
            };
            mix(n as u64);
            mix(m as u64);
            for j in 0..n {
                for (r, v) in matrix.col_iter(j) {
                    mix(r as u64);
                    mix(v.to_bits());
                }
            }
            h
        };

        let mut solver = Solver {
            lp,
            n,
            m,
            cost,
            lower,
            upper,
            matrix,
            rhs,
            statuses: Vec::new(),
            basic: Vec::new(),
            factor: Factorization::factorize(0, &[]).expect("empty basis"),
            fingerprint,
            x_basic: vec![0.0; m],
            iterations: 0,
            limit: lp.iteration_limit(),
            deadline: lp.time_limit().map(|d| std::time::Instant::now() + d),
            stall: 0,
        };

        let warm_applied = warm.is_some_and(|b| solver.try_warm_basis(b));
        if !warm_applied {
            solver.cold_basis();
            solver
                .refactorize()
                .map_err(|_| LpError::InvalidModel("logical basis is singular".into()))?;
        }
        Ok(solver)
    }

    /// Default nonbasic status of a variable given its bounds.
    fn default_status(&self, j: usize) -> VarStatus {
        if self.lower[j].is_finite() {
            VarStatus::AtLower
        } else if self.upper[j].is_finite() {
            VarStatus::AtUpper
        } else {
            VarStatus::Free
        }
    }

    /// Repairs a nonbasic status that no longer matches the bounds.
    fn reconcile_status(&self, j: usize, status: VarStatus) -> VarStatus {
        match status {
            VarStatus::Basic => VarStatus::Basic,
            VarStatus::AtLower if self.lower[j].is_finite() => VarStatus::AtLower,
            VarStatus::AtUpper if self.upper[j].is_finite() => VarStatus::AtUpper,
            _ => self.default_status(j),
        }
    }

    /// All-logical starting basis.
    fn cold_basis(&mut self) {
        self.statuses = (0..self.n + self.m)
            .map(|j| {
                if j < self.n {
                    self.default_status(j)
                } else {
                    VarStatus::Basic
                }
            })
            .collect();
        self.basic = (self.n..self.n + self.m).collect();
    }

    /// Attempts to adopt (and possibly extend) a warm basis; returns `false`
    /// when the basis is stale or singular, leaving the solver untouched.
    fn try_warm_basis(&mut self, warm: &Basis) -> bool {
        let old_n = warm.num_structural;
        let old_m = warm.num_rows();
        if old_n > self.n || old_m > self.m {
            return false;
        }
        let remap = |var: usize| -> usize {
            if var < old_n {
                var
            } else {
                self.n + (var - old_n)
            }
        };
        let mut statuses = Vec::with_capacity(self.n + self.m);
        for j in 0..self.n {
            let status = if j < old_n {
                warm.statuses[j]
            } else {
                self.default_status(j)
            };
            statuses.push(self.reconcile_status(j, status));
        }
        for i in 0..self.m {
            let j = self.n + i;
            let status = if i < old_m {
                warm.statuses[old_n + i]
            } else {
                VarStatus::Basic
            };
            statuses.push(self.reconcile_status(j, status));
        }
        let mut basic: Vec<usize> = warm.basic.iter().map(|&v| remap(v)).collect();
        basic.extend(self.n + old_m..self.n + self.m);
        // Consistency: every basic entry must carry Basic status and the
        // counts must agree (reconcile_status never turns Basic into
        // nonbasic, so this only guards against corrupted inputs).
        if basic.len() != self.m || basic.iter().any(|&v| statuses[v] != VarStatus::Basic) {
            return false;
        }
        // Fast path: the basis carries the factorisation it was produced
        // with, and the constraint matrix is bit-identical (fingerprint) at
        // unchanged dimensions — bound changes don't touch the basis
        // matrix, so the cached factors are *this* basis' factors and the
        // from-scratch refactorisation is skipped. This is what makes
        // branch-and-bound node re-solves cheap: their fixed cost used to
        // be dominated by exactly that refactorisation.
        if old_n == self.n && old_m == self.m && warm.matrix_fingerprint == self.fingerprint {
            if let Some(cached) = warm.factor.as_ref().filter(|f| f.worth_caching()) {
                self.statuses = statuses;
                self.basic = basic;
                self.factor = (**cached).clone();
                return true;
            }
        }
        let prev_statuses = std::mem::replace(&mut self.statuses, statuses);
        let prev_basic = std::mem::replace(&mut self.basic, basic);
        if self.refactorize().is_err() {
            self.statuses = prev_statuses;
            self.basic = prev_basic;
            return false;
        }
        true
    }

    /// Snapshots the basis, **moving** the factorisation into the snapshot
    /// (no clone — only valid as the very last step of a solve).
    fn into_snapshot(mut self) -> Basis {
        let factor = std::mem::replace(
            &mut self.factor,
            Factorization::factorize(0, &[]).expect("empty basis"),
        );
        Basis {
            statuses: self.statuses,
            basic: self.basic,
            num_structural: self.n,
            factor: Some(std::sync::Arc::new(factor)),
            matrix_fingerprint: self.fingerprint,
        }
    }

    /// Iterates the `(row, value)` entries of the full column of variable
    /// `j` (structural: matrix column; logical: unit vector).
    fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (structural, logical) = if j < self.n {
            (Some(self.matrix.col_iter(j)), None)
        } else {
            (None, Some((j - self.n, 1.0)))
        };
        structural.into_iter().flatten().chain(logical)
    }

    /// Dot product of the column of variable `j` with a dense row vector.
    fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        if j < self.n {
            self.matrix.col_dot(j, dense)
        } else {
            dense[j - self.n]
        }
    }

    fn refactorize(&mut self) -> Result<(), crate::basis::SingularBasis> {
        let columns: Vec<Vec<(usize, f64)>> = self
            .basic
            .iter()
            .map(|&j| self.column(j).collect())
            .collect();
        self.factor = Factorization::factorize(self.m, &columns)?;
        Ok(())
    }

    /// Value of a nonbasic variable.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.statuses[j] {
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Free => 0.0,
            VarStatus::Basic => unreachable!("basic variable has no nonbasic value"),
        }
    }

    /// Recomputes the basic values `x_B = B⁻¹(b − N·x_N)`.
    fn compute_x_basic(&mut self) {
        let mut rhs = self.rhs.clone();
        for j in 0..self.n + self.m {
            if self.statuses[j] == VarStatus::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for (r, a) in self.column(j) {
                    rhs[r] -= a * v;
                }
            }
        }
        self.factor.ftran(&mut rhs);
        self.x_basic = rhs;
    }

    /// Bound-violation tolerance for a bound value.
    #[inline]
    fn feas_tol(bound: f64) -> f64 {
        TOLERANCE * (1.0 + bound.abs())
    }

    /// Checks the shared iteration and wall-clock limits (called once per
    /// pivot loop iteration; the clock is sampled every 32 pivots).
    fn check_limits(&self) -> Result<(), LpError> {
        if self.iterations >= self.limit {
            return Err(LpError::IterationLimit);
        }
        if self.iterations.is_multiple_of(32) {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() > deadline {
                    return Err(LpError::TimeLimit);
                }
            }
        }
        Ok(())
    }

    /// `(positions, total violation)` of basic variables whose bound
    /// violation exceeds `max(feas_tol, accept)`.
    fn infeasible_positions(&self, accept: f64) -> (Vec<usize>, f64) {
        let mut out = Vec::new();
        let mut total = 0.0;
        for (k, &j) in self.basic.iter().enumerate() {
            let x = self.x_basic[k];
            let (l, u) = (self.lower[j], self.upper[j]);
            if x < l - Self::feas_tol(l).max(accept) {
                out.push(k);
                total += l - x;
            } else if x > u + Self::feas_tol(u).max(accept) {
                out.push(k);
                total += x - u;
            }
        }
        (out, total)
    }

    /// Reduced costs `d_j = c_j − yᵀ a_j` for all variables (basics ≈ 0)
    /// under the given cost vector (indexed by variable).
    fn duals(&self, cost: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (k, &j) in self.basic.iter().enumerate() {
            y[k] = cost[j];
        }
        self.factor.btran(&mut y);
        y
    }

    /// One primal simplex run with the composite phase-1/phase-2 objective.
    /// Terminates at optimality, or with `Infeasible` / `Unbounded` /
    /// `IterationLimit`.
    ///
    /// Basic values are maintained incrementally (`x_B ← x_B − σ·t·w` per
    /// pivot) and refreshed from scratch at every refactorisation.
    fn primal(&mut self) -> Result<(), LpError> {
        self.compute_x_basic();
        // Once phase 1 stalls at a numerically tiny residual, those
        // violations are written off (up to ACCEPT_INFEAS) so the loop
        // proceeds to optimise the true objective instead of returning a
        // never-optimised point.
        let mut accept = 0.0f64;
        loop {
            self.check_limits()?;
            if self.factor.needs_refactorization() {
                self.refactorize_or_reset()?;
                self.compute_x_basic();
            }
            let (infeasible, violation) = self.infeasible_positions(accept);
            let phase1 = !infeasible.is_empty();

            // Composite costs: sum of infeasibilities while any exist.
            let cost_owned;
            let cost: &[f64] = if phase1 {
                let mut c = vec![0.0; self.n + self.m];
                for &k in &infeasible {
                    let j = self.basic[k];
                    c[j] = if self.x_basic[k] < self.lower[j] {
                        -1.0
                    } else {
                        1.0
                    };
                }
                cost_owned = c;
                &cost_owned
            } else {
                &self.cost
            };

            let y = self.duals(cost);
            let use_bland = self.stall > self.m.max(50);
            let mut entering: Option<(usize, f64, f64)> = None; // (var, d, direction)
            for (j, &cj) in cost.iter().enumerate() {
                if self.statuses[j] == VarStatus::Basic {
                    continue;
                }
                if self.lower[j] == self.upper[j] {
                    continue; // fixed: can never move
                }
                let d = cj - self.column_dot(j, &y);
                let candidate = match self.statuses[j] {
                    VarStatus::AtLower => (d < -DUAL_TOL).then_some((d, 1.0)),
                    VarStatus::AtUpper => (d > DUAL_TOL).then_some((d, -1.0)),
                    VarStatus::Free => {
                        if d < -DUAL_TOL {
                            Some((d, 1.0))
                        } else if d > DUAL_TOL {
                            Some((d, -1.0))
                        } else {
                            None
                        }
                    }
                    VarStatus::Basic => None,
                };
                if let Some((d, dir)) = candidate {
                    if use_bland {
                        entering = Some((j, d, dir));
                        break;
                    }
                    if entering
                        .map(|(_, best, _)| d.abs() > best.abs())
                        .unwrap_or(true)
                    {
                        entering = Some((j, d, dir));
                    }
                }
            }
            let Some((q, _dq, sigma)) = entering else {
                if phase1 {
                    if violation <= ACCEPT_INFEAS && accept < ACCEPT_INFEAS {
                        // Numerically feasible: absorb the residual and
                        // continue with the true costs (phase 2).
                        accept = ACCEPT_INFEAS;
                        continue;
                    }
                    return Err(LpError::Infeasible);
                }
                return Ok(()); // optimal
            };

            // Direction through the basis.
            let mut w = vec![0.0; self.m];
            for (r, a) in self.column(q) {
                w[r] = a;
            }
            self.factor.ftran(&mut w);

            // Ratio test. `g_k = dx_k/dt` for step `t ≥ 0` of the entering
            // variable in direction `sigma`.
            #[derive(Clone, Copy)]
            enum Blocker {
                Flip,
                Basic { pos: usize, to_upper: bool },
            }
            let mut t_best = f64::INFINITY;
            let mut best_pivot = 0.0f64;
            let mut best_leaving = usize::MAX; // basic var id, for Bland ties
            let mut blocker: Option<Blocker> = None;
            if self.lower[q].is_finite() && self.upper[q].is_finite() {
                t_best = self.upper[q] - self.lower[q];
                best_pivot = 1.0;
                blocker = Some(Blocker::Flip);
            }
            for (k, &wk) in w.iter().enumerate() {
                if wk.abs() <= RATIO_PIVOT_TOL {
                    continue;
                }
                let g = -sigma * wk;
                let j = self.basic[k];
                let x = self.x_basic[k];
                let (l, u) = (self.lower[j], self.upper[j]);
                // Each basic row yields at most one breakpoint: feasible
                // basics stop at the bound they move towards; infeasible
                // basics stop at the (violated) bound they re-enter through.
                let candidate: Option<(f64, bool)> = if x < l - Self::feas_tol(l) {
                    (g > 0.0).then(|| ((l - x) / g, false))
                } else if x > u + Self::feas_tol(u) {
                    (g < 0.0).then(|| ((u - x) / g, true))
                } else if g > 0.0 && u.is_finite() {
                    Some(((u - x) / g, true))
                } else if g < 0.0 && l.is_finite() {
                    Some(((x - l) / -g, false))
                } else {
                    None
                };
                if let Some((ratio, to_upper)) = candidate {
                    let ratio = ratio.max(0.0);
                    // Prefer strictly smaller ratios. On (near-)ties the
                    // default rule keeps the numerically larger pivot; in
                    // Bland mode the smallest basic variable index wins,
                    // which (with the smallest-index entering rule) breaks
                    // degenerate cycles.
                    let tie_break = if use_bland {
                        j < best_leaving
                    } else {
                        wk.abs() > best_pivot.abs()
                    };
                    if ratio < t_best - 1e-12 || (ratio < t_best + 1e-12 && tie_break) {
                        t_best = ratio;
                        best_pivot = wk;
                        best_leaving = j;
                        blocker = Some(Blocker::Basic { pos: k, to_upper });
                    }
                }
            }

            let Some(block) = blocker else {
                return if phase1 {
                    // Cannot happen for a correctly signed direction; treat
                    // conservatively as infeasible.
                    Err(LpError::Infeasible)
                } else {
                    Err(LpError::Unbounded)
                };
            };

            self.stall = if t_best <= DEGENERATE_STEP {
                self.stall + 1
            } else {
                0
            };
            self.iterations += 1;
            // Incremental basic-value update: x_B ← x_B − σ·t·w.
            let step = sigma * t_best;
            if step != 0.0 {
                for (k, &wk) in w.iter().enumerate() {
                    self.x_basic[k] -= step * wk;
                }
            }
            match block {
                Blocker::Flip => {
                    self.statuses[q] = match self.statuses[q] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other,
                    };
                }
                Blocker::Basic { pos, to_upper } => {
                    let entering_value = self.nonbasic_value(q) + step;
                    let leaving = self.basic[pos];
                    self.statuses[leaving] = if to_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.statuses[q] = VarStatus::Basic;
                    self.basic[pos] = q;
                    self.x_basic[pos] = entering_value;
                    if !self.factor.update(pos, &w) {
                        self.refactorize_or_reset()?;
                        self.compute_x_basic();
                    }
                }
            }
        }
    }

    /// Dual simplex from a dual-feasible basis; bails out (for the primal
    /// engine) when dual feasibility is lost or progress stalls.
    fn dual(&mut self) -> Result<DualOutcome, LpError> {
        // Entry check: reduced costs must be dual feasible for the current
        // statuses (loose tolerance — minor violations are left to the
        // finishing primal run).
        let y = self.duals(&self.cost);
        for j in 0..self.n + self.m {
            if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                continue;
            }
            let d = self.cost[j] - self.column_dot(j, &y);
            let ok = match self.statuses[j] {
                VarStatus::AtLower => d >= -1e-6,
                VarStatus::AtUpper => d <= 1e-6,
                VarStatus::Free => d.abs() <= 1e-6,
                VarStatus::Basic => true,
            };
            if !ok {
                return Ok(DualOutcome::Abandoned);
            }
        }

        // The dual pays off only when the warm basis is a few pivots from
        // primal feasibility; past this budget the composite primal takes
        // over. This also bounds the warm-start overhead on bases that turn
        // out to be far from the new optimum.
        let budget = 2 * self.m + 200;
        let mut dual_pivots = 0usize;
        let mut dual_stall = 0usize;
        self.compute_x_basic();
        loop {
            self.check_limits()?;
            if dual_stall > self.m.max(50) || dual_pivots > budget {
                return Ok(DualOutcome::Abandoned);
            }
            if self.factor.needs_refactorization() {
                self.refactorize_or_reset()?;
                self.compute_x_basic();
            }

            // Leaving row: the most violated basic.
            let mut leaving: Option<(usize, f64, bool)> = None; // (pos, violation, below)
            for (k, &j) in self.basic.iter().enumerate() {
                let x = self.x_basic[k];
                let (l, u) = (self.lower[j], self.upper[j]);
                if x < l - Self::feas_tol(l) {
                    let v = l - x;
                    if leaving.map(|(_, best, _)| v > best).unwrap_or(true) {
                        leaving = Some((k, v, true));
                    }
                } else if x > u + Self::feas_tol(u) {
                    let v = x - u;
                    if leaving.map(|(_, best, _)| v > best).unwrap_or(true) {
                        leaving = Some((k, v, false));
                    }
                }
            }
            let Some((r, _, below)) = leaving else {
                return Ok(DualOutcome::Feasible);
            };

            // Row r of B⁻¹A: alpha_j = (eᵣᵀ B⁻¹) a_j. Reduced costs are
            // evaluated lazily — only for columns that survive the
            // eligibility test.
            let mut rho = vec![0.0; self.m];
            rho[r] = 1.0;
            self.factor.btran(&mut rho);
            let y = self.duals(&self.cost);

            // Dual ratio test: smallest |d_j / alpha_j| over the eligible
            // entering candidates (ties: largest pivot).
            let mut entering: Option<(usize, f64, f64)> = None; // (var, ratio, alpha)
            for j in 0..self.n + self.m {
                if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                    continue;
                }
                let alpha = self.column_dot(j, &rho);
                if alpha.abs() <= RATIO_PIVOT_TOL {
                    continue;
                }
                // x_r must move towards its violated bound when j moves in
                // its own feasible direction: dx_r = −alpha·dx_j.
                let eligible = match self.statuses[j] {
                    VarStatus::AtLower => {
                        if below {
                            alpha < 0.0
                        } else {
                            alpha > 0.0
                        }
                    }
                    VarStatus::AtUpper => {
                        if below {
                            alpha > 0.0
                        } else {
                            alpha < 0.0
                        }
                    }
                    VarStatus::Free => true,
                    VarStatus::Basic => false,
                };
                if !eligible {
                    continue;
                }
                let d = self.cost[j] - self.column_dot(j, &y);
                let ratio = (d / alpha).abs();
                let better = match entering {
                    None => true,
                    Some((_, best, best_alpha)) => {
                        ratio < best - 1e-12
                            || (ratio < best + 1e-12 && alpha.abs() > best_alpha.abs())
                    }
                };
                if better {
                    entering = Some((j, ratio, alpha));
                }
            }
            let Some((q, ratio, _)) = entering else {
                // Dual ray found — but the entry check was only loose
                // (1e-6) and tiny-pivot columns were excluded, so hand the
                // infeasibility proof to the composite primal instead of
                // asserting it here.
                return Ok(DualOutcome::Abandoned);
            };

            dual_stall = if ratio <= DEGENERATE_STEP {
                dual_stall + 1
            } else {
                0
            };

            let mut w = vec![0.0; self.m];
            for (row, a) in self.column(q) {
                w[row] = a;
            }
            self.factor.ftran(&mut w);
            if w[r].abs() <= RATIO_PIVOT_TOL {
                // Numerical disagreement between rho-row and ftran column;
                // refactorise and retry (or give up to the primal).
                self.refactorize_or_reset()?;
                self.compute_x_basic();
                dual_stall += 1;
                dual_pivots += 1;
                continue;
            }

            // Incremental primal update along w: drive x_r exactly to the
            // bound it leaves at.
            let target = if below {
                self.lower[self.basic[r]]
            } else {
                self.upper[self.basic[r]]
            };
            let delta = (self.x_basic[r] - target) / w[r];
            let entering_value = self.nonbasic_value(q) + delta;
            for (k, &wk) in w.iter().enumerate() {
                self.x_basic[k] -= delta * wk;
            }

            let leaving_var = self.basic[r];
            self.statuses[leaving_var] = if below {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            self.statuses[q] = VarStatus::Basic;
            self.basic[r] = q;
            self.x_basic[r] = entering_value;
            self.iterations += 1;
            dual_pivots += 1;
            if !self.factor.update(r, &w) {
                self.refactorize_or_reset()?;
                self.compute_x_basic();
            }
        }
    }

    /// Refactorises the current basis; on singularity falls back to the
    /// all-logical basis (which is always factorisable).
    fn refactorize_or_reset(&mut self) -> Result<(), LpError> {
        if self.refactorize().is_ok() {
            return Ok(());
        }
        self.cold_basis();
        self.refactorize()
            .map_err(|_| LpError::InvalidModel("logical basis is singular".into()))
    }

    /// Extracts the solution in the model's original sense, consuming the
    /// solver (the factorisation moves into the returned [`Basis`]).
    fn extract(mut self) -> (LpSolution, Basis) {
        self.compute_x_basic();
        let mut values = vec![0.0; self.n];
        for (j, value) in values.iter_mut().enumerate() {
            *value = match self.statuses[j] {
                VarStatus::Basic => 0.0, // filled below
                _ => self.nonbasic_value(j),
            };
        }
        for (k, &j) in self.basic.iter().enumerate() {
            if j < self.n {
                values[j] = self.x_basic[k];
            }
        }
        // Clamp round-off outside the bounds.
        for (j, v) in values.iter_mut().enumerate() {
            let (l, u) = (self.lp.lower_bounds()[j], self.lp.upper_bounds()[j]);
            *v = v.clamp(l.min(u), u.max(l));
        }
        let objective: f64 = self
            .lp
            .objective()
            .iter()
            .zip(&values)
            .map(|(c, x)| c * x)
            .sum();
        let solution = LpSolution {
            values,
            objective,
            iterations: self.iterations,
        };
        (solution, self.into_snapshot())
    }
}

/// Extracts simplex tableau rows for the given *basic structural* variables
/// under `basis` (which must belong to exactly this model — same variable
/// and constraint counts). Requested variables that are not basic are
/// skipped silently.
pub(crate) fn tableau_rows(
    lp: &LinearProgram,
    basis: &Basis,
    basic_vars: &[usize],
) -> Result<Vec<TableauRow>, LpError> {
    if basis.num_structural != lp.num_vars() || basis.num_rows() != lp.num_constraints() {
        return Err(LpError::InvalidModel(
            "tableau basis does not match the model dimensions".into(),
        ));
    }
    let mut solver = Solver::new(lp, Some(basis))?;
    if solver.basic != basis.basic {
        // The warm basis was singular and Solver fell back to the logical
        // basis; a tableau of a different basis would be meaningless.
        return Err(LpError::InvalidModel(
            "tableau basis is singular for this model".into(),
        ));
    }
    solver.compute_x_basic();
    let mut rows = Vec::with_capacity(basic_vars.len());
    for &var in basic_vars {
        let Some(pos) = solver.basic.iter().position(|&j| j == var) else {
            continue;
        };
        // Row `pos` of B⁻¹A: ᾱ_j = (e_posᵀ B⁻¹)·a_j.
        let mut rho = vec![0.0; solver.m];
        rho[pos] = 1.0;
        solver.factor.btran(&mut rho);
        let mut entries = Vec::new();
        for j in 0..solver.n + solver.m {
            if solver.statuses[j] == VarStatus::Basic || solver.lower[j] == solver.upper[j] {
                continue;
            }
            let coeff = solver.column_dot(j, &rho);
            if coeff.abs() <= 1e-11 {
                continue;
            }
            let status = match solver.statuses[j] {
                VarStatus::AtLower => NonbasicStatus::AtLower,
                VarStatus::AtUpper => NonbasicStatus::AtUpper,
                VarStatus::Free => NonbasicStatus::Free,
                VarStatus::Basic => unreachable!("filtered above"),
            };
            entries.push(TableauEntry {
                var: j,
                coeff,
                status,
            });
        }
        rows.push(TableauRow {
            basic_var: var,
            value: solver.x_basic[pos],
            entries,
        });
    }
    Ok(rows)
}

/// Solves `lp`, optionally warm-starting from `warm` (see [`Basis`]).
pub(crate) fn solve(
    lp: &LinearProgram,
    warm: Option<&Basis>,
) -> Result<(LpSolution, Basis), LpError> {
    let debug = std::env::var_os("RFIC_LP_DEBUG").is_some();
    let t0 = std::time::Instant::now();
    let mut solver = Solver::new(lp, warm)?;
    let mut dual_iters = 0;
    if warm.is_some() {
        let r = solver.dual();
        dual_iters = solver.iterations;
        r?;
        // Finish (or recover) with the primal: a no-op when the dual run
        // already reached the optimum.
    }
    let result = solver.primal();
    if debug && t0.elapsed() > std::time::Duration::from_millis(500) {
        eprintln!(
            "[lp] n={} m={} warm={} dual_iters={dual_iters} total_iters={} stall={} elapsed={:?} result={result:?}",
            solver.n,
            solver.m,
            warm.is_some(),
            solver.iterations,
            solver.stall,
            t0.elapsed()
        );
    }
    result?;
    Ok(solver.extract())
}
