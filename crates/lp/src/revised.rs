//! Bounded-variable revised simplex over a sparse column representation.
//!
//! The model is brought into the computational standard form
//!
//! ```text
//!   minimise cᵀx   subject to   A·x_struct + s = b,   l ≤ x ≤ u
//! ```
//!
//! with one *logical* (slack) variable per row: `s ≥ 0` for `<=` rows,
//! `s ≤ 0` for `>=` rows and `s = 0` for `=` rows. Variables keep their
//! bounds natively — no shifting, mirroring or free-variable splitting as in
//! the old dense tableau — and nonbasic variables sit at one of their finite
//! bounds (free nonbasics sit at zero).
//!
//! Three engines share the factorised basis ([`crate::basis`]):
//!
//! * **primal phase 1/2** — a composite-objective primal simplex: while any
//!   basic variable violates its bounds the objective is the (piecewise
//!   linear) sum of infeasibilities, afterwards the true costs. Phase-2
//!   pricing is **devex** (reference-framework weights over a candidate
//!   list, reduced costs maintained incrementally from the BTRAN'd pivot
//!   row) with periodic full refreshes; [`PricingRule::Dantzig`] pins the
//!   classic full most-negative scan for cross-checks. The ratio test is a
//!   **Harris two-pass** (bounded-tolerance) test that picks the largest
//!   pivot among the near-tied blockers, with Bland's rule (entering and
//!   leaving) as the anti-cycling fallback after degenerate stalls,
//! * **dual simplex** — entered when a warm-start basis is dual feasible,
//!   which is the cheap path after branch-and-bound bound changes or after
//!   appending lazily separated constraint rows; its reduced costs are also
//!   maintained incrementally across pivots. Under
//!   [`PricingRule::DualSteepestEdge`] the leaving row is chosen by the
//!   steepest-edge score `δ²/β` (Forrest–Goldfarb reference weights,
//!   updated incrementally from the FTRAN'd entering column and carried
//!   across warm starts on the [`Basis`]) and the ratio test is the
//!   **bound-flipping (long-step)** test, which sweeps multiple
//!   breakpoints of the piecewise-linear dual objective and flips boxed
//!   nonbasics bound-to-bound in one batched extra FTRAN,
//! * **bound flips** — nonbasic variables with two finite bounds move
//!   bound-to-bound without a basis change.
//!
//! Warm starts are first-class: [`solve`] accepts the [`Basis`] returned by
//! a previous solve (possibly of a *smaller* model — new variables enter at
//! a bound, new rows enter with their logical basic) and re-factorises it,
//! falling back to the all-logical cold basis when the warm basis is stale
//! or singular.

use crate::basis::Factorization;
use crate::problem::{
    ConstraintOp, LinearProgram, LpError, LpSolution, MatrixCache, PricingRule, Sense,
};
use crate::TOLERANCE;

/// Reduced-cost (dual) tolerance.
const DUAL_TOL: f64 = 1e-7;
/// Minimum pivot magnitude in the ratio tests.
const RATIO_PIVOT_TOL: f64 = 1e-9;
/// A step below this is treated as degenerate for stall detection.
const DEGENERATE_STEP: f64 = 1e-10;
/// Residual bound violation accepted when the phase-1 objective stalls at a
/// numerically tiny value.
const ACCEPT_INFEAS: f64 = 1e-6;
/// Hard ceiling on the violation the phase-flap guard may write off (see
/// the flap counter in [`Solver::primal`]).
const ACCEPT_FLAP_CAP: f64 = 1e-4;
/// Phase-2 → phase-1 re-entries tolerated before the flap guard fires.
const MAX_PHASE_FLAPS: usize = 8;
/// Floor on a dual steepest-edge reference weight: the exact leaving-row
/// weight `βᵣ/αᵣ²` can collapse towards zero through a huge pivot, which
/// would make that row look infinitely attractive forever after.
const DSE_MIN_WEIGHT: f64 = 1e-4;
/// Ceiling on a dual steepest-edge reference weight: past this the
/// incrementally maintained framework has drifted into pure noise (tiny
/// pivots compounding), so the whole framework resets to unit weights.
const DSE_WEIGHT_CAP: f64 = 1e12;
/// Remaining slope below which the bound-flipping ratio test stops
/// passing breakpoints: flipping through a near-zero slope buys no dual
/// progress but costs primal accuracy.
const BFRT_SLOPE_TOL: f64 = 1e-9;

/// Status of one variable relative to the current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
    Free,
}

/// A warm-start basis: the basic variable of every row plus the bound
/// status of every nonbasic variable.
///
/// Returned by [`LinearProgram::solve_warm`] and accepted back by it — also
/// for a *grown* model (more variables and/or more constraints than the
/// solve that produced it): new structural variables start at a bound, new
/// rows start with their logical variable basic, which is exactly what makes
/// re-solving after a branching bound change or a lazily separated
/// constraint cheap (dual simplex from the parent optimum).
///
/// The basis additionally carries the **LU factorisation** it was produced
/// with (shared, behind an [`Arc`]): variable-bound changes — the only
/// difference between branch-and-bound parent and child LPs — do not touch
/// the basis matrix, so a warm re-solve of a model with the *identical
/// constraint matrix* (verified by fingerprint) can skip the from-scratch
/// refactorisation entirely. That fixed cost, not the pivot count, used to
/// dominate warm node solves.
///
/// [`Arc`]: std::sync::Arc
#[derive(Debug, Clone)]
pub struct Basis {
    statuses: Vec<VarStatus>,
    basic: Vec<usize>,
    num_structural: usize,
    /// Cached factorisation of this basis (valid only for the matrix with
    /// the matching fingerprint).
    factor: Option<std::sync::Arc<Factorization>>,
    /// Fingerprint of the constraint matrix the factorisation belongs to.
    matrix_fingerprint: u64,
    /// Dual steepest-edge reference weights by elimination position
    /// (aligned with `basic`), carried across warm starts so a
    /// branch-and-bound child re-solve prices its dual pivots with the
    /// parent's converged weights instead of restarting from the unit
    /// framework. `None` when the producing solve did not maintain them
    /// ([`crate::PricingRule::DualSteepestEdge`] only). Only re-adopted
    /// when the matrix fingerprint and dimensions still match — any
    /// structural edit resets the inheritor to unit weights.
    dse_weights: Option<Vec<f64>>,
}

impl PartialEq for Basis {
    fn eq(&self, other: &Self) -> bool {
        // The factorisation cache is an acceleration detail, not identity.
        self.statuses == other.statuses
            && self.basic == other.basic
            && self.num_structural == other.num_structural
    }
}

impl Basis {
    /// Number of structural variables of the model this basis belongs to.
    pub fn num_structural(&self) -> usize {
        self.num_structural
    }

    /// Number of constraint rows of the model this basis belongs to.
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }

    /// Per-variable statuses (structural variables `0..n`, then logicals
    /// `n..n+m`). Used by the presolve layer to map bases between the
    /// full and reduced variable spaces.
    pub(crate) fn statuses(&self) -> &[VarStatus] {
        &self.statuses
    }

    /// Basic variable indices in elimination order.
    pub(crate) fn basic_vars(&self) -> &[usize] {
        &self.basic
    }

    /// Assemble a basis from an explicit status/basic-set mapping, with no
    /// cached factorisation (fingerprint 0, so the first adoption pays one
    /// refactorisation) and no dual steepest-edge weights. The presolve
    /// layer uses this for both directions of its basis mapping.
    pub(crate) fn from_mapping(
        statuses: Vec<VarStatus>,
        basic: Vec<usize>,
        num_structural: usize,
    ) -> Basis {
        Basis {
            statuses,
            basic,
            num_structural,
            factor: None,
            matrix_fingerprint: 0,
            dse_weights: None,
        }
    }
}

/// Bound status of a nonbasic variable in a [`TableauRow`] entry.
///
/// Needed by cut generators to shift nonbasic variables to their bound
/// (`x̄ = x − l` at the lower bound, `x̄ = u − x` at the upper) before
/// applying an integer rounding argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonbasicStatus {
    /// Sitting at its (finite) lower bound.
    AtLower,
    /// Sitting at its (finite) upper bound.
    AtUpper,
    /// Free nonbasic (no finite bound; value 0).
    Free,
}

/// One nonbasic entry `ᾱ_j` of a simplex tableau row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableauEntry {
    /// Variable index: `< num_vars` for structural variables, `num_vars + r`
    /// for the logical (slack) variable of constraint row `r`.
    pub var: usize,
    /// Tableau coefficient `ᾱ_j = (eᵣᵀB⁻¹)·a_j`.
    pub coeff: f64,
    /// Which bound the nonbasic variable currently sits at.
    pub status: NonbasicStatus,
}

/// A row of the simplex tableau `x_B(r) + Σ_j ᾱ_j·x_j = value + Σ_j ᾱ_j·x̄_j*`
/// for the basis returned by [`crate::LinearProgram::solve_warm`].
///
/// `value` is the current value of the basic variable; entries cover every
/// *nonbasic, non-fixed* variable (fixed variables — equal bounds — are
/// omitted: they can never move, so they contribute nothing to a cut).
#[derive(Debug, Clone, PartialEq)]
pub struct TableauRow {
    /// The (structural) variable basic in this row.
    pub basic_var: usize,
    /// Current value of the basic variable (`b̄ᵣ`).
    pub value: f64,
    /// Nonbasic coefficients of the row.
    pub entries: Vec<TableauEntry>,
}

/// Outcome of the dual-simplex engine.
enum DualOutcome {
    /// Primal feasibility reached (and dual feasibility maintained).
    Feasible,
    /// Dual feasibility was lost or the engine stalled; run the primal.
    Abandoned,
}

/// What blocks the entering variable in the primal ratio test.
#[derive(Clone, Copy)]
enum Blocker {
    /// The entering variable reaches its own opposite bound.
    Flip,
    /// The basic variable at elimination position `pos` reaches a bound.
    Basic { pos: usize, to_upper: bool },
}

struct Solver<'a> {
    lp: &'a LinearProgram,
    n: usize,
    m: usize,
    /// Minimisation costs over structural + logical variables.
    cost: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Shared CSC view of the constraint matrix plus its fingerprint
    /// (memoised on the model — see [`MatrixCache`]).
    cache: std::sync::Arc<MatrixCache>,
    rhs: Vec<f64>,
    statuses: Vec<VarStatus>,
    basic: Vec<usize>,
    factor: Factorization,
    /// Basic values by elimination position (parallel to `basic`).
    x_basic: Vec<f64>,
    /// Pivots applied since `x_basic` was last recomputed from scratch —
    /// `usize::MAX` while it holds no valid values at all. Lets the
    /// engines share one computation across the dual entry, the primal
    /// start and the extraction instead of recomputing at each hand-off.
    x_staleness: usize,
    iterations: usize,
    refactorizations: usize,
    limit: usize,
    /// Wall-clock deadline, checked periodically inside the pivot loops.
    deadline: Option<std::time::Instant>,
    /// Cooperative cancellation flag, checked at the deadline cadence.
    cancel: Option<crate::CancelToken>,
    /// Consecutive degenerate steps; beyond a threshold the pricing falls
    /// back to Bland's rule.
    stall: usize,
    /// Devex pricing state: incrementally maintained reduced costs (exact
    /// for candidate-list members, stale elsewhere), reference-framework
    /// weights, and the candidate list itself. Valid only while
    /// `reduced_valid` holds; every full refresh recomputes the reduced
    /// costs from fresh duals and resets the reference framework.
    reduced: Vec<f64>,
    devex_weights: Vec<f64>,
    candidates: Vec<usize>,
    reduced_valid: bool,
    /// `true` while dual steepest-edge weights are being maintained
    /// ([`PricingRule::DualSteepestEdge`]): every basis change — primal or
    /// dual — then updates `dse_weights`, so the snapshot handed to the
    /// next warm start always describes the final basis.
    track_dse: bool,
    /// Forrest–Goldfarb reference weights `β_k ≈ ‖B⁻ᵀe_k‖²` by
    /// elimination position, parallel to `basic`. Empty unless
    /// `track_dse`.
    dse_weights: Vec<f64>,
    /// Dual-engine pivots (subset of `iterations`).
    dual_iterations: usize,
    /// Bound flips applied by the long-step dual ratio test.
    bound_flips: usize,
}

impl<'a> Solver<'a> {
    fn new(lp: &'a LinearProgram, warm: Option<&Basis>) -> Result<Solver<'a>, LpError> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let sign = match lp.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        let mut cost = Vec::with_capacity(n + m);
        for &c in lp.objective() {
            cost.push(sign * c);
        }
        cost.resize(n + m, 0.0);

        let mut lower = Vec::with_capacity(n + m);
        let mut upper = Vec::with_capacity(n + m);
        lower.extend_from_slice(lp.lower_bounds());
        upper.extend_from_slice(lp.upper_bounds());
        let mut rhs = Vec::with_capacity(m);
        for con in lp.constraints() {
            rhs.push(con.rhs);
            match con.op {
                ConstraintOp::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                ConstraintOp::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                ConstraintOp::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }

        let cache = lp.matrix_cache();

        let mut solver = Solver {
            lp,
            n,
            m,
            cost,
            lower,
            upper,
            cache,
            rhs,
            statuses: Vec::new(),
            basic: Vec::new(),
            factor: Factorization::factorize(0, &[]).expect("empty basis"),
            x_basic: vec![0.0; m],
            x_staleness: usize::MAX,
            iterations: 0,
            refactorizations: 0,
            limit: lp.iteration_limit(),
            deadline: lp.time_limit().map(|d| std::time::Instant::now() + d),
            cancel: lp.cancel_token().cloned(),
            stall: 0,
            reduced: Vec::new(),
            devex_weights: Vec::new(),
            candidates: Vec::new(),
            reduced_valid: false,
            track_dse: lp.pricing() == PricingRule::DualSteepestEdge,
            dse_weights: Vec::new(),
            dual_iterations: 0,
            bound_flips: 0,
        };

        let warm_applied = warm.is_some_and(|b| solver.try_warm_basis(b));
        if !warm_applied {
            solver.cold_basis();
            solver
                .refactorize()
                .map_err(|_| LpError::InvalidModel("logical basis is singular".into()))?;
        }
        // Weight handoff contract: `try_warm_basis` adopts the warm basis'
        // weights only on the exact-match fast path; everything else —
        // cold start, structural edits, stale bases — starts from the unit
        // reference framework.
        if solver.track_dse && solver.dse_weights.len() != solver.m {
            solver.dse_weights = vec![1.0; solver.m];
        }
        Ok(solver)
    }

    /// Default nonbasic status of a variable given its bounds.
    fn default_status(&self, j: usize) -> VarStatus {
        if self.lower[j].is_finite() {
            VarStatus::AtLower
        } else if self.upper[j].is_finite() {
            VarStatus::AtUpper
        } else {
            VarStatus::Free
        }
    }

    /// Repairs a nonbasic status that no longer matches the bounds.
    fn reconcile_status(&self, j: usize, status: VarStatus) -> VarStatus {
        match status {
            VarStatus::Basic => VarStatus::Basic,
            VarStatus::AtLower if self.lower[j].is_finite() => VarStatus::AtLower,
            VarStatus::AtUpper if self.upper[j].is_finite() => VarStatus::AtUpper,
            _ => self.default_status(j),
        }
    }

    /// All-logical starting basis.
    fn cold_basis(&mut self) {
        self.statuses = (0..self.n + self.m)
            .map(|j| {
                if j < self.n {
                    self.default_status(j)
                } else {
                    VarStatus::Basic
                }
            })
            .collect();
        self.basic = (self.n..self.n + self.m).collect();
    }

    /// Attempts to adopt (and possibly extend) a warm basis; returns `false`
    /// when the basis is stale or singular, leaving the solver untouched.
    fn try_warm_basis(&mut self, warm: &Basis) -> bool {
        let old_n = warm.num_structural;
        let old_m = warm.num_rows();
        if old_n > self.n || old_m > self.m {
            return false;
        }
        let remap = |var: usize| -> usize {
            if var < old_n {
                var
            } else {
                self.n + (var - old_n)
            }
        };
        let mut statuses = Vec::with_capacity(self.n + self.m);
        for j in 0..self.n {
            let status = if j < old_n {
                warm.statuses[j]
            } else {
                self.default_status(j)
            };
            statuses.push(self.reconcile_status(j, status));
        }
        for i in 0..self.m {
            let j = self.n + i;
            let status = if i < old_m {
                warm.statuses[old_n + i]
            } else {
                VarStatus::Basic
            };
            statuses.push(self.reconcile_status(j, status));
        }
        let mut basic: Vec<usize> = warm.basic.iter().map(|&v| remap(v)).collect();
        basic.extend(self.n + old_m..self.n + self.m);
        // Consistency: every basic entry must carry Basic status and the
        // counts must agree (reconcile_status never turns Basic into
        // nonbasic, so this only guards against corrupted inputs).
        if basic.len() != self.m || basic.iter().any(|&v| statuses[v] != VarStatus::Basic) {
            return false;
        }
        // Fast path: the basis carries the factorisation it was produced
        // with, and the constraint matrix is bit-identical (fingerprint) at
        // unchanged dimensions — bound changes don't touch the basis
        // matrix, so the cached factors are *this* basis' factors and the
        // from-scratch refactorisation is skipped. This is what makes
        // branch-and-bound node re-solves cheap: their fixed cost used to
        // be dominated by exactly that refactorisation.
        // The exact-match condition of the factorisation cache also
        // revalidates the inherited dual steepest-edge weights: they
        // describe `‖B⁻ᵀe_k‖²` of *this* basis over *this* matrix, so
        // structural edits (which change the fingerprint or the
        // dimensions) leave `inherited` empty and `Solver::new` resets to
        // the unit framework. They are only *committed* on the success
        // paths below — adopting a warm basis can still fail on a
        // singular refactorisation, and weights of a basis that was never
        // installed would poison the leaving-row selection.
        let exact_match =
            old_n == self.n && old_m == self.m && warm.matrix_fingerprint == self.cache.fingerprint;
        // Row extension: same columns, rows appended (constraints are
        // append-only, so an old basis with fewer rows describes a prefix
        // of this model — the lazy-separation and branch-and-cut
        // protocols). The old weights stay aligned with the remapped
        // `basic` prefix and the appended rows enter with their logical
        // variable basic at the exact unit weight `‖B⁻ᵀe‖² = 1` of a
        // fresh logical row. The framework is an approximation either way
        // (Forrest–Goldfarb monotone envelope), so extending beats the
        // old behaviour of resetting the whole framework on every
        // appended cut row.
        let row_extension = old_n == self.n && old_m < self.m;
        let inherited = if self.track_dse && (exact_match || row_extension) {
            warm.dse_weights
                .as_ref()
                .filter(|w| w.len() == old_m)
                .filter(|w| w.iter().all(|&b| b.is_finite() && b >= DSE_MIN_WEIGHT))
                .map(|w| {
                    let mut extended = w.clone();
                    extended.resize(self.m, 1.0);
                    extended
                })
        } else {
            None
        };
        if exact_match {
            if let Some(cached) = warm.factor.as_ref().filter(|f| f.worth_caching()) {
                self.statuses = statuses;
                self.basic = basic;
                self.factor = (**cached).clone();
                if let Some(w) = inherited {
                    self.dse_weights = w;
                }
                return true;
            }
        }
        let prev_statuses = std::mem::replace(&mut self.statuses, statuses);
        let prev_basic = std::mem::replace(&mut self.basic, basic);
        if self.refactorize().is_err() {
            self.statuses = prev_statuses;
            self.basic = prev_basic;
            return false;
        }
        if let Some(w) = inherited {
            self.dse_weights = w;
        }
        true
    }

    /// Snapshots the basis, **moving** the factorisation into the snapshot
    /// (no clone — only valid as the very last step of a solve).
    fn into_snapshot(mut self) -> Basis {
        let factor = std::mem::replace(
            &mut self.factor,
            Factorization::factorize(0, &[]).expect("empty basis"),
        );
        let dse_weights = if self.track_dse && self.dse_weights.len() == self.m {
            Some(std::mem::take(&mut self.dse_weights))
        } else {
            None
        };
        Basis {
            statuses: self.statuses,
            basic: self.basic,
            num_structural: self.n,
            factor: Some(std::sync::Arc::new(factor)),
            matrix_fingerprint: self.cache.fingerprint,
            dse_weights,
        }
    }

    /// Iterates the `(row, value)` entries of the full column of variable
    /// `j` (structural: matrix column; logical: unit vector).
    fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (structural, logical) = if j < self.n {
            (Some(self.cache.matrix.col_iter(j)), None)
        } else {
            (None, Some((j - self.n, 1.0)))
        };
        structural.into_iter().flatten().chain(logical)
    }

    /// Dot product of the column of variable `j` with a dense row vector.
    fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        if j < self.n {
            self.cache.matrix.col_dot(j, dense)
        } else {
            dense[j - self.n]
        }
    }

    fn refactorize(&mut self) -> Result<(), crate::basis::SingularBasis> {
        let columns: Vec<Vec<(usize, f64)>> = self
            .basic
            .iter()
            .map(|&j| self.column(j).collect())
            .collect();
        self.factor = Factorization::factorize(self.m, &columns)?;
        self.refactorizations += 1;
        Ok(())
    }

    /// Value of a nonbasic variable.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.statuses[j] {
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Free => 0.0,
            VarStatus::Basic => unreachable!("basic variable has no nonbasic value"),
        }
    }

    /// Ensures `x_basic` is populated and drift-free: recomputes it unless
    /// it was already computed from scratch and no pivot has touched it
    /// since.
    fn ensure_x_basic(&mut self) {
        if self.x_staleness != 0 {
            self.compute_x_basic();
        }
    }

    /// Recomputes the basic values `x_B = B⁻¹(b − N·x_N)`.
    fn compute_x_basic(&mut self) {
        let mut rhs = self.rhs.clone();
        for j in 0..self.n + self.m {
            if self.statuses[j] == VarStatus::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for (r, a) in self.column(j) {
                    rhs[r] -= a * v;
                }
            }
        }
        self.factor.ftran_aux(&mut rhs);
        self.x_basic = rhs;
        self.x_staleness = 0;
    }

    /// Bound-violation tolerance for a bound value.
    #[inline]
    fn feas_tol(bound: f64) -> f64 {
        TOLERANCE * (1.0 + bound.abs())
    }

    /// Checks the shared iteration and wall-clock limits (called once per
    /// pivot loop iteration; the clock is sampled every 32 pivots).
    fn check_limits(&self) -> Result<(), LpError> {
        if self.iterations >= self.limit {
            return Err(LpError::IterationLimit);
        }
        if self.iterations.is_multiple_of(32) {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() > deadline {
                    return Err(LpError::TimeLimit);
                }
            }
            if let Some(cancel) = &self.cancel {
                if cancel.is_cancelled() {
                    return Err(LpError::TimeLimit);
                }
            }
        }
        Ok(())
    }

    /// `(positions, total violation)` of basic variables whose bound
    /// violation exceeds `max(feas_tol, accept)`.
    fn infeasible_positions(&self, accept: f64) -> (Vec<usize>, f64) {
        let mut out = Vec::new();
        let mut total = 0.0;
        for (k, &j) in self.basic.iter().enumerate() {
            let x = self.x_basic[k];
            let (l, u) = (self.lower[j], self.upper[j]);
            if x < l - Self::feas_tol(l).max(accept) {
                out.push(k);
                total += l - x;
            } else if x > u + Self::feas_tol(u).max(accept) {
                out.push(k);
                total += x - u;
            }
        }
        (out, total)
    }

    /// Duals `y = B⁻ᵀc_B` under the given cost vector (indexed by
    /// variable). An associated function over disjoint fields so callers
    /// can hand in `&self.cost` while the factorisation is borrowed
    /// mutably.
    fn duals_vec(factor: &mut Factorization, basic: &[usize], m: usize, cost: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m];
        for (k, &j) in basic.iter().enumerate() {
            y[k] = cost[j];
        }
        factor.btran(&mut y);
        y
    }

    /// Eligibility of nonbasic variable `j` as an entering candidate given
    /// its reduced cost `d`: returns the movement direction, or `None`.
    #[inline]
    fn entering_direction(&self, j: usize, d: f64) -> Option<f64> {
        match self.statuses[j] {
            VarStatus::AtLower => (d < -DUAL_TOL).then_some(1.0),
            VarStatus::AtUpper => (d > DUAL_TOL).then_some(-1.0),
            VarStatus::Free => {
                if d < -DUAL_TOL {
                    Some(1.0)
                } else if d > DUAL_TOL {
                    Some(-1.0)
                } else {
                    None
                }
            }
            VarStatus::Basic => None,
        }
    }

    /// Full devex refresh: recompute every reduced cost from fresh duals,
    /// reset the reference framework (all weights 1) and rebuild the
    /// candidate list from the most attractive eligible columns.
    fn devex_refresh(&mut self) {
        let y = Self::duals_vec(&mut self.factor, &self.basic, self.m, &self.cost);
        if self.reduced.len() != self.n + self.m {
            self.reduced = vec![0.0; self.n + self.m];
            self.devex_weights = vec![1.0; self.n + self.m];
        }
        let mut eligible: Vec<(usize, f64)> = Vec::new();
        for j in 0..self.n + self.m {
            self.devex_weights[j] = 1.0;
            if self.statuses[j] == VarStatus::Basic {
                self.reduced[j] = 0.0;
                continue;
            }
            let d = self.cost[j] - self.column_dot(j, &y);
            self.reduced[j] = d;
            if self.lower[j] == self.upper[j] {
                continue; // fixed: can never move
            }
            if self.entering_direction(j, d).is_some() {
                eligible.push((j, d.abs()));
            }
        }
        // Keep the most attractive columns (weights are all 1 right after a
        // refresh, so |d| is the devex score). The cap keeps per-pivot
        // pricing O(list · column) instead of O(nnz(A)).
        let cap = ((self.n + self.m) / 6).clamp(16, 64);
        if eligible.len() > cap {
            eligible.select_nth_unstable_by(cap - 1, |a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
            });
            eligible.truncate(cap);
        }
        self.candidates = eligible.into_iter().map(|(j, _)| j).collect();
        self.reduced_valid = true;
    }

    /// Picks the entering variable under devex pricing: the candidate with
    /// the best `d²/w` score. Candidates that became basic or lost
    /// eligibility are pruned in place; an empty (or exhausted) list
    /// triggers a full refresh. Returns `None` only when a *fresh* refresh
    /// finds no eligible column — the true optimality test.
    fn devex_entering(&mut self) -> Option<(usize, f64)> {
        for attempt in 0..2 {
            if !self.reduced_valid {
                self.devex_refresh();
            }
            let mut best: Option<(usize, f64, f64)> = None; // (var, dir, score)
            let mut kept = std::mem::take(&mut self.candidates);
            // Members that went basic (or fixed) leave the list; members
            // that merely lost eligibility stay — their reduced costs keep
            // being maintained and often recover, and dropping them caused
            // a full refresh every few pivots near the optimum.
            kept.retain(|&j| {
                if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                    return false;
                }
                let d = self.reduced[j];
                if let Some(dir) = self.entering_direction(j, d) {
                    let score = d * d / self.devex_weights[j];
                    if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                        best = Some((j, dir, score));
                    }
                }
                true
            });
            self.candidates = kept;
            if let Some((q, dir, _)) = best {
                return Some((q, dir));
            }
            if attempt == 0 {
                // List drained: the maintained reduced costs say nothing is
                // attractive among the candidates, but stale columns outside
                // the list may be. Refresh and try once more.
                self.reduced_valid = false;
            }
        }
        None
    }

    /// Devex post-pivot bookkeeping (old-basis quantities): update the
    /// maintained reduced costs and reference weights of the candidate list
    /// from the BTRAN'd pivot row, and hand the leaving variable a weight
    /// and a place on the list.
    ///
    /// `rho` is `B⁻ᵀe_r` of the basis *before* the pivot, `alpha_rq` the
    /// pivot element `w_r`.
    fn devex_post_pivot(&mut self, q: usize, leaving: usize, rho: &[f64], alpha_rq: f64) {
        let theta_d = self.reduced[q] / alpha_rq;
        let w_ref = self.devex_weights[q];
        for idx in 0..self.candidates.len() {
            let j = self.candidates[idx];
            if j == q || self.statuses[j] == VarStatus::Basic {
                continue;
            }
            let alpha = self.column_dot(j, rho);
            if alpha != 0.0 {
                self.reduced[j] -= theta_d * alpha;
                let ratio = alpha / alpha_rq;
                let candidate_weight = ratio * ratio * w_ref;
                if candidate_weight > self.devex_weights[j] {
                    self.devex_weights[j] = candidate_weight;
                }
            }
        }
        // The leaving variable's reduced cost is exactly −θ_d (its tableau
        // row coefficient is 1); it inherits the reference weight through
        // the pivot and joins the candidate list.
        self.reduced[leaving] = -theta_d;
        self.devex_weights[leaving] = (w_ref / (alpha_rq * alpha_rq)).max(1.0);
        self.reduced[q] = 0.0;
        if !self.candidates.contains(&leaving) {
            self.candidates.push(leaving);
        }
    }

    /// Dual steepest-edge (Forrest–Goldfarb) reference-weight update for a
    /// basis change at elimination position `pos` with FTRAN'd entering
    /// column `w` — old-basis quantities, so this must run *before* the
    /// factorisation update.
    ///
    /// With `ρ_k = B⁻ᵀe_k` and pivot element `α = w_pos = ρ_pos·a_q`, the
    /// new inverse rows are `ρ'_pos = ρ_pos/α` and
    /// `ρ'_k = ρ_k − (w_k/α)·ρ_pos`, hence exactly
    ///
    /// ```text
    ///   β'_pos = β_pos/α²
    ///   β'_k   = β_k − 2·(w_k/α)·(ρ_k·ρ_pos) + (w_k/α)²·β_pos
    /// ```
    ///
    /// The cross terms `τ_k = ρ_k·ρ_pos` would cost an extra FTRAN of `ρ`
    /// every pivot; like devex, the reference-framework variant drops them
    /// and keeps the weights as the monotone lower envelope
    /// `β'_k = max(β_k, (w_k/α)²·β_pos)` — free, since `w` is already in
    /// hand from the ratio test, and accurate enough to steer the leaving
    /// choice (the exact `β'_pos` is kept). The framework resets to unit
    /// weights when a weight blows past [`DSE_WEIGHT_CAP`] or the
    /// factorisation is rebuilt after a refused (unstable)
    /// Forrest–Tomlin update.
    fn dse_update_weights(&mut self, pos: usize, w: &[f64]) {
        let alpha = w[pos];
        let beta_r = self.dse_weights[pos];
        let mut max_seen = 0.0f64;
        for (k, &wk) in w.iter().enumerate() {
            if k == pos || wk == 0.0 {
                continue;
            }
            let ratio = wk / alpha;
            let candidate = ratio * ratio * beta_r;
            if candidate > self.dse_weights[k] {
                self.dse_weights[k] = candidate;
                max_seen = max_seen.max(candidate);
            }
        }
        let new_r = (beta_r / (alpha * alpha)).max(DSE_MIN_WEIGHT);
        self.dse_weights[pos] = new_r;
        if !new_r.is_finite() || max_seen > DSE_WEIGHT_CAP || new_r > DSE_WEIGHT_CAP {
            self.dse_reset_weights();
        }
    }

    /// Resets the dual steepest-edge framework to unit weights (cold
    /// reference framework).
    fn dse_reset_weights(&mut self) {
        self.dse_weights.clear();
        self.dse_weights.resize(self.m, 1.0);
    }

    /// Primal ratio test for entering variable `q` moving in direction
    /// `sigma` with FTRAN'd column `w`. Returns `(step, blocker)`; no
    /// blocker means the direction is unbounded.
    ///
    /// Under devex pricing (`harris = true`) this is a **Harris two-pass**
    /// (bounded-tolerance) test: pass 1 finds the largest step acceptable
    /// when every bound is relaxed by its feasibility tolerance; pass 2
    /// picks, among the blockers whose exact ratio fits under that limit,
    /// the one with the numerically largest pivot. Degenerate near-ties
    /// thus resolve towards stable pivots and strictly longer steps
    /// (bounded by the tolerance) instead of 1e-12 tie-windows.
    ///
    /// With `harris = false` — the pinned Dantzig rule, and always in
    /// Bland fallback mode — the test is the exact pre-devex one: smallest
    /// ratio wins, 1e-12 near-ties break on the larger pivot (Dantzig) or
    /// the smallest basic variable index (Bland, which together with
    /// smallest-index entering provably breaks cycles). Pinning the ratio
    /// test alongside the pricing rule keeps `PricingRule::Dantzig` a
    /// faithful reproduction of the old pivot sequence — the layout flow's
    /// trajectory is chaotic in exactly these tie decisions.
    fn ratio_test(
        &self,
        q: usize,
        sigma: f64,
        w: &[f64],
        use_bland: bool,
        harris: bool,
    ) -> (f64, Option<Blocker>) {
        // Breakpoint of one basic row: (exact ratio, relaxed ratio, to_upper).
        let breakpoint = |k: usize, wk: f64| -> Option<(f64, f64, bool)> {
            let g = -sigma * wk;
            let j = self.basic[k];
            let x = self.x_basic[k];
            let (l, u) = (self.lower[j], self.upper[j]);
            // Each basic row yields at most one breakpoint: feasible basics
            // stop at the bound they move towards; infeasible basics stop
            // at the (violated) bound they re-enter through.
            if x < l - Self::feas_tol(l) {
                (g > 0.0).then(|| ((l - x) / g, (l - x + Self::feas_tol(l)) / g, false))
            } else if x > u + Self::feas_tol(u) {
                (g < 0.0).then(|| ((u - x) / g, (u - x - Self::feas_tol(u)) / g, true))
            } else if g > 0.0 && u.is_finite() {
                Some(((u - x) / g, (u - x + Self::feas_tol(u)) / g, true))
            } else if g < 0.0 && l.is_finite() {
                Some(((x - l) / -g, (x - l + Self::feas_tol(l)) / -g, false))
            } else {
                None
            }
        };

        let flip_span = (self.lower[q].is_finite() && self.upper[q].is_finite())
            .then(|| self.upper[q] - self.lower[q]);

        if !harris || use_bland {
            // Exact test with the pre-devex tie-breaks.
            let mut t_best = f64::INFINITY;
            let mut best_pivot = 0.0f64;
            let mut best_leaving = usize::MAX;
            let mut blocker: Option<Blocker> = None;
            if let Some(span) = flip_span {
                t_best = span;
                best_pivot = 1.0;
                blocker = Some(Blocker::Flip);
            }
            for (k, &wk) in w.iter().enumerate() {
                if wk.abs() <= RATIO_PIVOT_TOL {
                    continue;
                }
                if let Some((ratio, _, to_upper)) = breakpoint(k, wk) {
                    let ratio = ratio.max(0.0);
                    let j = self.basic[k];
                    let tie_break = if use_bland {
                        j < best_leaving
                    } else {
                        wk.abs() > best_pivot.abs()
                    };
                    if ratio < t_best - 1e-12 || (ratio < t_best + 1e-12 && tie_break) {
                        t_best = ratio;
                        best_pivot = wk;
                        best_leaving = j;
                        blocker = Some(Blocker::Basic { pos: k, to_upper });
                    }
                }
            }
            return (t_best, blocker);
        }

        // Harris pass 1: collect the breakpoints once and find the
        // tolerance-relaxed limit step.
        let mut breaks: Vec<(usize, f64, f64, bool)> = Vec::new(); // (pos, |wk|, exact, to_upper)
        let mut t_lim = f64::INFINITY;
        if let Some(span) = flip_span {
            t_lim = span + TOLERANCE;
        }
        for (k, &wk) in w.iter().enumerate() {
            if wk.abs() <= RATIO_PIVOT_TOL {
                continue;
            }
            if let Some((exact, relaxed, to_upper)) = breakpoint(k, wk) {
                breaks.push((k, wk.abs(), exact, to_upper));
                if relaxed < t_lim {
                    t_lim = relaxed;
                }
            }
        }
        if !t_lim.is_finite() {
            return (f64::INFINITY, flip_span.map(|_| Blocker::Flip));
        }
        // Harris pass 2: among the blockers whose exact ratio fits under
        // the relaxed limit, take the largest pivot.
        let mut best: Option<(usize, f64, f64, bool)> = None;
        for &(pos, amag, exact, to_upper) in &breaks {
            if exact <= t_lim && best.map(|(_, b, _, _)| amag > b).unwrap_or(true) {
                best = Some((pos, amag, exact, to_upper));
            }
        }
        match (best, flip_span) {
            (Some((_, _, exact, _)), Some(span)) if span < exact => (span, Some(Blocker::Flip)),
            (Some((pos, _, exact, to_upper)), _) => {
                (exact.max(0.0), Some(Blocker::Basic { pos, to_upper }))
            }
            (None, Some(span)) => (span, Some(Blocker::Flip)),
            (None, None) => (f64::INFINITY, None),
        }
    }

    /// Long-step (piecewise-linear) phase-1 ratio test.
    ///
    /// The composite phase-1 objective `f = Σ violations` is piecewise
    /// linear along the entering direction: every basic variable crossing
    /// a bound changes the slope by `|w_k|` — an infeasible basic
    /// re-entering through its violated bound stops contributing, a
    /// feasible one crossing a bound starts to, an infeasible one sailing
    /// past the *opposite* bound contributes again. Instead of stopping at
    /// the first breakpoint (which lets a pivot trade a counted violation
    /// for an uncounted near-tolerance one and a later pivot trade it
    /// straight back — a non-degenerate cycle), the test sweeps the
    /// breakpoints in ratio order, accumulating slope, and stops at the
    /// one where the slope turns non-negative. Each pivot then decreases
    /// the total violation monotonically, takes the longest profitable
    /// step through degenerate breakpoint clusters, and the entering
    /// column's own bound span stays a hard stop (bound flip).
    ///
    /// `d_q` is the composite reduced cost of the entering variable
    /// (`sigma·d_q < 0` by eligibility — the initial slope).
    fn ratio_test_phase1(
        &self,
        q: usize,
        sigma: f64,
        w: &[f64],
        d_q: f64,
    ) -> (f64, Option<Blocker>) {
        // (ratio, |w_k|, position, to_upper)
        let mut breaks: Vec<(f64, f64, usize, bool)> = Vec::new();
        for (k, &wk) in w.iter().enumerate() {
            if wk.abs() <= RATIO_PIVOT_TOL {
                continue;
            }
            let g = -sigma * wk;
            let j = self.basic[k];
            let x = self.x_basic[k];
            let (l, u) = (self.lower[j], self.upper[j]);
            if x < l - Self::feas_tol(l) {
                if g > 0.0 {
                    breaks.push((((l - x) / g).max(0.0), wk.abs(), k, false));
                    if u.is_finite() {
                        // Sailing past the opposite bound re-accrues cost.
                        breaks.push((((u - x) / g).max(0.0), wk.abs(), k, true));
                    }
                }
            } else if x > u + Self::feas_tol(u) {
                if g < 0.0 {
                    breaks.push((((u - x) / g).max(0.0), wk.abs(), k, true));
                    if l.is_finite() {
                        breaks.push((((x - l) / -g).max(0.0), wk.abs(), k, false));
                    }
                }
            } else if g > 0.0 && u.is_finite() {
                breaks.push((((u - x) / g).max(0.0), wk.abs(), k, true));
            } else if g < 0.0 && l.is_finite() {
                breaks.push((((x - l) / -g).max(0.0), wk.abs(), k, false));
            }
        }
        let flip_span = (self.lower[q].is_finite() && self.upper[q].is_finite())
            .then(|| self.upper[q] - self.lower[q]);
        if breaks.is_empty() {
            return match flip_span {
                Some(span) => (span, Some(Blocker::Flip)),
                None => (f64::INFINITY, None),
            };
        }
        // Ratio order; among equal ratios take large pivots first, so the
        // breakpoint where the slope flips carries a stable pivot.
        breaks.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut slope = sigma * d_q; // negative by eligibility
        let mut chosen: Option<(f64, usize, bool)> = None;
        for &(t, amag, k, to_upper) in &breaks {
            if let Some(span) = flip_span {
                if span < t {
                    // The entering variable's own bound blocks first.
                    return (span, Some(Blocker::Flip));
                }
            }
            slope += amag;
            if slope >= -DUAL_TOL {
                chosen = Some((t, k, to_upper));
                break;
            }
        }
        match chosen {
            Some((t, k, to_upper)) => (t, Some(Blocker::Basic { pos: k, to_upper })),
            None => {
                // Slope never turned non-negative: every violation this
                // direction can fix is fixed at the last breakpoint; any
                // remaining decrease is unbounded only through the flip.
                match flip_span {
                    Some(span) => (span, Some(Blocker::Flip)),
                    None => {
                        let &(t, _, k, to_upper) = breaks.last().expect("nonempty");
                        (t, Some(Blocker::Basic { pos: k, to_upper }))
                    }
                }
            }
        }
    }

    /// One primal simplex run with the composite phase-1/phase-2 objective.
    /// Terminates at optimality, or with `Infeasible` / `Unbounded` /
    /// `IterationLimit`.
    ///
    /// Phase 2 under [`PricingRule::Devex`] prices over the maintained
    /// candidate list; phase 1 (composite costs change with the infeasible
    /// set) and [`PricingRule::Dantzig`] scan all columns against fresh
    /// duals. Basic values are maintained incrementally
    /// (`x_B ← x_B − σ·t·w` per pivot) and refreshed from scratch at every
    /// refactorisation.
    fn primal(&mut self) -> Result<(), LpError> {
        self.ensure_x_basic();
        self.reduced_valid = false;
        // Once phase 1 stalls at a numerically tiny residual, those
        // violations are written off (up to ACCEPT_INFEAS) so the loop
        // proceeds to optimise the true objective instead of returning a
        // never-optimised point.
        let mut accept = 0.0f64;
        // Phase-flap guard. On the big-M layout models the FTRAN residual
        // can reach ~1e-6 in absolute terms (coefficients of 1e3–1e6 at
        // relative accuracy ~1e-12), so the true-cost optimum occasionally
        // sits a hair outside a bound tolerance: phase 2 pivots to it,
        // phase 1 pivots away, phase 2 pivots straight back — a
        // non-degenerate 2-cycle that no stall counter catches (each pivot
        // takes a real step). Repeated phase-2 → phase-1 re-entries at a
        // numerically tiny violation therefore write the residual off
        // (bounded by [`ACCEPT_FLAP_CAP`]), exactly like the existing
        // stalled-phase-1 accept ratchet. The written-off slack never
        // reaches callers as an out-of-bounds *value* — `extract` clamps
        // every variable into its bounds, so branch-and-bound cannot see a
        // branching bound violated by it (only a ≤1e-4 residual on some
        // constraint row, the same class of slack `ACCEPT_INFEAS` already
        // admits).
        let mut was_phase1 = true;
        let mut phase_flaps = 0usize;
        loop {
            self.check_limits()?;
            if self.factor.needs_refactorization() {
                self.refactorize_or_reset()?;
                self.compute_x_basic();
                // Refresh the maintained reduced costs against the fresh
                // factors: incremental updates drift with the eta file.
                self.reduced_valid = false;
            }
            let (mut infeasible, mut violation) = self.infeasible_positions(accept);
            let mut phase1 = !infeasible.is_empty();
            if phase1 && !was_phase1 {
                phase_flaps += 1;
                if phase_flaps > MAX_PHASE_FLAPS && violation <= ACCEPT_FLAP_CAP {
                    accept = accept.max((violation * 2.0).min(ACCEPT_FLAP_CAP));
                    let relaxed = self.infeasible_positions(accept);
                    phase1 = !relaxed.0.is_empty();
                    violation = relaxed.1;
                    infeasible = relaxed.0;
                }
            }
            was_phase1 = phase1;
            let use_bland = self.stall > self.m.max(50);
            let use_devex = !phase1 && !use_bland && self.lp.pricing() == PricingRule::Devex;

            let entering: Option<(usize, f64, f64)> = if use_devex {
                self.devex_entering()
                    .map(|(q, dir)| (q, dir, self.reduced[q]))
            } else {
                // Full-scan pricing against fresh duals: composite costs in
                // phase 1, Dantzig (most negative) or Bland (smallest
                // index) selection. Any pivot taken here invalidates the
                // devex state.
                self.reduced_valid = false;
                let cost_owned;
                let cost: &[f64] = if phase1 {
                    // `infeasible` is the set just computed above (post
                    // flap-guard relaxation) — no second O(m) scan.
                    let mut c = vec![0.0; self.n + self.m];
                    for &k in &infeasible {
                        let j = self.basic[k];
                        c[j] = if self.x_basic[k] < self.lower[j] {
                            -1.0
                        } else {
                            1.0
                        };
                    }
                    cost_owned = c;
                    &cost_owned
                } else {
                    &self.cost
                };
                let y = Self::duals_vec(&mut self.factor, &self.basic, self.m, cost);
                let mut chosen: Option<(usize, f64, f64)> = None; // (var, dir, d)
                for (j, &cj) in cost.iter().enumerate() {
                    if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                        continue;
                    }
                    let d = cj - self.column_dot(j, &y);
                    if let Some(dir) = self.entering_direction(j, d) {
                        if use_bland {
                            chosen = Some((j, dir, d));
                            break;
                        }
                        if chosen
                            .map(|(_, _, best)| d.abs() > best.abs())
                            .unwrap_or(true)
                        {
                            chosen = Some((j, dir, d));
                        }
                    }
                }
                chosen
            };

            let Some((q, sigma, d_q)) = entering else {
                if phase1 {
                    if violation <= ACCEPT_INFEAS && accept < ACCEPT_INFEAS {
                        // Numerically feasible: absorb the residual and
                        // continue with the true costs (phase 2).
                        accept = ACCEPT_INFEAS;
                        continue;
                    }
                    return Err(LpError::Infeasible);
                }
                return Ok(()); // optimal
            };

            // Direction through the basis.
            let mut w = vec![0.0; self.m];
            for (r, a) in self.column(q) {
                w[r] = a;
            }
            self.factor.ftran(&mut w);

            // Phase 1 sweeps the piecewise-linear composite objective for
            // the longest profitable step; phase 2 (and the Bland
            // fallback, whose anti-cycling argument needs the plain
            // smallest-ratio rule) uses the bound-blocking test.
            let (t_best, blocker) = if phase1 && !use_bland {
                self.ratio_test_phase1(q, sigma, &w, d_q)
            } else {
                self.ratio_test(q, sigma, &w, use_bland, use_devex)
            };
            let Some(block) = blocker else {
                return if phase1 {
                    // Cannot happen for a correctly signed direction; treat
                    // conservatively as infeasible.
                    Err(LpError::Infeasible)
                } else {
                    Err(LpError::Unbounded)
                };
            };

            self.stall = if t_best <= DEGENERATE_STEP {
                self.stall + 1
            } else {
                0
            };
            self.iterations += 1;
            self.x_staleness = self.x_staleness.saturating_add(1);
            // Incremental basic-value update: x_B ← x_B − σ·t·w.
            let step = sigma * t_best;
            if step != 0.0 {
                for (k, &wk) in w.iter().enumerate() {
                    self.x_basic[k] -= step * wk;
                }
            }
            match block {
                Blocker::Flip => {
                    self.statuses[q] = match self.statuses[q] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other,
                    };
                    // Basis unchanged: the devex state stays exact; the
                    // flipped variable loses eligibility on its own.
                }
                Blocker::Basic { pos, to_upper } => {
                    // The devex update needs the BTRAN'd pivot row of the
                    // *pre-pivot* basis.
                    let rho = if use_devex && self.reduced_valid {
                        let mut rho = vec![0.0; self.m];
                        self.factor.btran_unit(pos, &mut rho);
                        Some(rho)
                    } else {
                        None
                    };
                    if self.track_dse {
                        // The weights describe the basis, not the engine:
                        // primal pivots after the dual hand-off must keep
                        // them current or the snapshot would poison the
                        // next warm start.
                        self.dse_update_weights(pos, &w);
                    }
                    let entering_value = self.nonbasic_value(q) + step;
                    let leaving = self.basic[pos];
                    self.statuses[leaving] = if to_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.statuses[q] = VarStatus::Basic;
                    self.basic[pos] = q;
                    self.x_basic[pos] = entering_value;
                    if let Some(rho) = rho {
                        self.devex_post_pivot(q, leaving, &rho, w[pos]);
                    }
                    if !self.factor.update(pos, &w) {
                        // Stability-triggered rebuild: the incremental DSE
                        // framework rode on the same drifting factors.
                        if self.track_dse {
                            self.dse_reset_weights();
                        }
                        self.refactorize_or_reset()?;
                        self.compute_x_basic();
                        self.reduced_valid = false;
                    }
                }
            }
        }
    }

    /// Dual simplex from a dual-feasible basis; bails out (for the primal
    /// engine) when dual feasibility is lost or progress stalls.
    ///
    /// Reduced costs are computed once on entry and then maintained
    /// incrementally across pivots from the tableau row the ratio test
    /// already computes — the old per-pivot BTRAN-plus-full-rescan is gone.
    fn dual(&mut self) -> Result<DualOutcome, LpError> {
        // Entry check: reduced costs must be dual feasible for the current
        // statuses (loose tolerance — minor violations are left to the
        // finishing primal run). The same pass seeds the maintained
        // reduced-cost vector.
        let y = Self::duals_vec(&mut self.factor, &self.basic, self.m, &self.cost);
        let mut d = vec![0.0; self.n + self.m];
        for (j, slot) in d.iter_mut().enumerate() {
            if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                continue;
            }
            let dj = self.cost[j] - self.column_dot(j, &y);
            *slot = dj;
            let ok = match self.statuses[j] {
                VarStatus::AtLower => dj >= -1e-6,
                VarStatus::AtUpper => dj <= 1e-6,
                VarStatus::Free => dj.abs() <= 1e-6,
                VarStatus::Basic => true,
            };
            if !ok {
                return Ok(DualOutcome::Abandoned);
            }
        }

        // The dual pays off only when the warm basis is a few pivots from
        // primal feasibility; past this budget the composite primal takes
        // over. This also bounds the warm-start overhead on bases that turn
        // out to be far from the new optimum.
        let budget = 2 * self.m + 200;
        let use_dse = self.track_dse;
        let mut dual_pivots = 0usize;
        let mut dual_stall = 0usize;
        // Bound-flipping ratio test scratch (DSE only): breakpoint list and
        // the variables flipped bound-to-bound by the current pivot.
        let mut bfrt_breaks: Vec<(usize, f64, f64)> = Vec::new();
        let mut flips: Vec<usize> = Vec::new();
        // Sparse pivot row α = ρᵀ[A | I], accumulated row-wise over the
        // non-zeros of ρ only (the CSR mirror): on the layout models ρ has
        // a handful of entries, so this replaces an every-column dot
        // product with work proportional to the touched rows.
        let mut alpha = crate::sparse::ScatterVec::new(self.n + self.m);
        let mut touched_sorted: Vec<usize> = Vec::new();
        self.ensure_x_basic();
        loop {
            self.check_limits()?;
            if dual_stall > self.m.max(50) || dual_pivots > budget {
                return Ok(DualOutcome::Abandoned);
            }
            if self.factor.needs_refactorization() {
                self.refactorize_or_reset()?;
                self.compute_x_basic();
                self.recompute_dual_reduced(&mut d);
            }

            // Leaving row: the most violated basic (the pinned pre-DSE
            // rule) — or, under dual steepest-edge pricing, the best
            // `δ²/β` score: the dual objective improves at rate δ per unit
            // step, a step of steepest-edge length `√β`, so `δ²/β` ranks
            // rows by improvement per unit of *actual* dual movement
            // instead of by raw violation (which over-prices rows whose
            // inverse row is long).
            let mut leaving: Option<(usize, f64, bool, f64)> = None; // (pos, violation, below, score)
            for (k, &j) in self.basic.iter().enumerate() {
                let x = self.x_basic[k];
                let (l, u) = (self.lower[j], self.upper[j]);
                let (v, is_below) = if x < l - Self::feas_tol(l) {
                    (l - x, true)
                } else if x > u + Self::feas_tol(u) {
                    (x - u, false)
                } else {
                    continue;
                };
                let score = if use_dse {
                    v * v / self.dse_weights[k]
                } else {
                    v
                };
                if leaving.map(|(_, _, _, best)| score > best).unwrap_or(true) {
                    leaving = Some((k, v, is_below, score));
                }
            }
            let Some((r, violation, below)) = leaving.map(|(k, v, b, _)| (k, v, b)) else {
                return Ok(DualOutcome::Feasible);
            };

            // Row r of B⁻¹A: alpha_j = (eᵣᵀ B⁻¹) a_j, needed for the ratio
            // test anyway — and sufficient to update every reduced cost
            // after the pivot.
            let mut rho = vec![0.0; self.m];
            self.factor.btran_unit(r, &mut rho);

            alpha.clear();
            for (i, &ri) in rho.iter().enumerate() {
                if ri.abs() > 1e-13 {
                    alpha.add(self.n + i, ri); // logical column of row i
                    let (cols, vals) = self.cache.rows.row(i);
                    for (&c, &v) in cols.iter().zip(vals) {
                        alpha.add(c, ri * v);
                    }
                }
            }

            // Dual ratio test. The touched set is scanned in ascending
            // column order — the pre-devex scan order, so near-tie
            // outcomes (which steer the chaotic layout flow) stay pinned
            // for the non-DSE rules.
            touched_sorted.clear();
            touched_sorted.extend_from_slice(alpha.touched());
            touched_sorted.sort_unstable();
            // x_r must move towards its violated bound when j moves in its
            // own feasible direction: dx_r = −alpha·dx_j.
            let eligible_dir = |statuses: &[VarStatus], j: usize, a: f64| -> bool {
                match statuses[j] {
                    VarStatus::AtLower => {
                        if below {
                            a < 0.0
                        } else {
                            a > 0.0
                        }
                    }
                    VarStatus::AtUpper => {
                        if below {
                            a > 0.0
                        } else {
                            a < 0.0
                        }
                    }
                    VarStatus::Free => true,
                    VarStatus::Basic => false,
                }
            };
            let mut entering: Option<(usize, f64, f64)> = None; // (var, ratio, alpha)
            flips.clear();
            if use_dse {
                // Bound-flipping (long-step) ratio test. The dual
                // objective is piecewise linear in the dual step θ with
                // initial slope equal to the violation δ of row r; at the
                // breakpoint θ_j = |d_j/α_j| the reduced cost of
                // candidate j crosses zero, and if j is *boxed* the sweep
                // may pass the breakpoint by flipping j to its opposite
                // bound — which moves x_r towards its violated bound by
                // |α_j|·span_j, i.e. lowers the slope by that amount.
                // Sweeping breakpoints in ratio order while the slope
                // stays positive takes the longest dual step that still
                // improves, flipping every passed candidate in one
                // batch — the classic multiplier on boxed degenerate
                // models (the one-hot direction groups of the layout
                // ILP), where the textbook test grinds through the same
                // breakpoints one degenerate pivot at a time.
                bfrt_breaks.clear();
                for &j in &touched_sorted {
                    if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                        continue;
                    }
                    let a = alpha.get(j);
                    if a.abs() <= RATIO_PIVOT_TOL || !eligible_dir(&self.statuses, j, a) {
                        continue;
                    }
                    bfrt_breaks.push((j, (d[j] / a).abs(), a));
                }
                bfrt_breaks.sort_by(|x, y| {
                    x.1.partial_cmp(&y.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(
                            y.2.abs()
                                .partial_cmp(&x.2.abs())
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                });
                let mut slope = violation;
                for (idx, &(j, ratio, a)) in bfrt_breaks.iter().enumerate() {
                    let span = self.upper[j] - self.lower[j];
                    let boxed = span.is_finite()
                        && matches!(self.statuses[j], VarStatus::AtLower | VarStatus::AtUpper);
                    let remaining = slope - a.abs() * span;
                    // Never flip the last breakpoint: a pivot needs an
                    // entering column, and a positive final slope with no
                    // column left would otherwise only prove dual
                    // unboundedness the loose entry check cannot certify.
                    if boxed && remaining > BFRT_SLOPE_TOL && idx + 1 < bfrt_breaks.len() {
                        flips.push(j);
                        slope = remaining;
                    } else {
                        entering = Some((j, ratio, a));
                        break;
                    }
                }
            } else {
                // Pinned test: smallest |d_j / α_j| over the eligible
                // entering candidates (ties: largest pivot).
                for &j in &touched_sorted {
                    if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                        continue;
                    }
                    let a = alpha.get(j);
                    if a.abs() <= RATIO_PIVOT_TOL || !eligible_dir(&self.statuses, j, a) {
                        continue;
                    }
                    let ratio = (d[j] / a).abs();
                    let better = match entering {
                        None => true,
                        Some((_, best, best_alpha)) => {
                            ratio < best - 1e-12
                                || (ratio < best + 1e-12 && a.abs() > best_alpha.abs())
                        }
                    };
                    if better {
                        entering = Some((j, ratio, a));
                    }
                }
            }
            let Some((q, ratio, alpha_rq)) = entering else {
                // Dual ray found — but the entry check was only loose
                // (1e-6) and tiny-pivot columns were excluded, so hand the
                // infeasibility proof to the composite primal instead of
                // asserting it here.
                return Ok(DualOutcome::Abandoned);
            };

            dual_stall = if ratio <= DEGENERATE_STEP {
                dual_stall + 1
            } else {
                0
            };

            let mut w = vec![0.0; self.m];
            for (row, a) in self.column(q) {
                w[row] = a;
            }
            self.factor.ftran(&mut w);
            if w[r].abs() <= RATIO_PIVOT_TOL {
                // Numerical disagreement between rho-row and ftran column;
                // refactorise and retry (or give up to the primal).
                self.refactorize_or_reset()?;
                self.compute_x_basic();
                self.recompute_dual_reduced(&mut d);
                dual_stall += 1;
                dual_pivots += 1;
                continue;
            }

            // Apply the batched bound flips of the long-step ratio test:
            // one auxiliary FTRAN of the accumulated flip column `Σ a_j·Δx_j`
            // updates every basic value at once (`x_B ← x_B − B⁻¹Σa_j·Δx_j`).
            // By construction of the sweep, row r stays infeasible in the
            // same direction afterwards (the slope — its remaining
            // violation — was still positive), so the pivot below proceeds
            // exactly as in the single-breakpoint test. The statuses only
            // toggle here, after the pivot column survived its numerical
            // check: committing flips and then abandoning the pivot would
            // leave reduced costs dual-infeasible for the new bounds.
            if !flips.is_empty() {
                let mut flip_col = vec![0.0; self.m];
                for &j in &flips {
                    let dx = match self.statuses[j] {
                        VarStatus::AtLower => self.upper[j] - self.lower[j],
                        VarStatus::AtUpper => self.lower[j] - self.upper[j],
                        _ => 0.0,
                    };
                    for (row, a) in self.column(j) {
                        flip_col[row] += a * dx;
                    }
                }
                self.factor.ftran_aux(&mut flip_col);
                for (k, &dk) in flip_col.iter().enumerate() {
                    self.x_basic[k] -= dk;
                }
                for &j in &flips {
                    self.statuses[j] = match self.statuses[j] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other,
                    };
                }
                self.bound_flips += flips.len();
                self.x_staleness = self.x_staleness.saturating_add(1);
            }

            // Incremental primal update along w: drive x_r exactly to the
            // bound it leaves at.
            let target = if below {
                self.lower[self.basic[r]]
            } else {
                self.upper[self.basic[r]]
            };
            let delta = (self.x_basic[r] - target) / w[r];
            let entering_value = self.nonbasic_value(q) + delta;
            for (k, &wk) in w.iter().enumerate() {
                self.x_basic[k] -= delta * wk;
            }

            if use_dse {
                self.dse_update_weights(r, &w);
            }
            let leaving_var = self.basic[r];
            self.statuses[leaving_var] = if below {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            self.statuses[q] = VarStatus::Basic;
            self.basic[r] = q;
            self.x_basic[r] = entering_value;
            self.iterations += 1;
            self.dual_iterations += 1;
            self.x_staleness = self.x_staleness.saturating_add(1);
            dual_pivots += 1;
            // Incremental dual update: d_j ← d_j − θ_d·α_rj with
            // θ_d = d_q/α_rq; the leaving variable ends at exactly −θ_d
            // (its own tableau coefficient is 1), the entering one at 0.
            let theta_d = d[q] / alpha_rq;
            if theta_d != 0.0 {
                for &j in alpha.touched() {
                    d[j] -= theta_d * alpha.get(j);
                }
            }
            d[leaving_var] = -theta_d;
            d[q] = 0.0;
            if !self.factor.update(r, &w) {
                // Stability-triggered rebuild resets the DSE framework
                // along with the factors.
                if use_dse {
                    self.dse_reset_weights();
                }
                self.refactorize_or_reset()?;
                self.compute_x_basic();
                self.recompute_dual_reduced(&mut d);
            }
        }
    }

    /// Recomputes the dual engine's maintained reduced costs from fresh
    /// duals (after a refactorisation invalidated the incremental state).
    fn recompute_dual_reduced(&mut self, d: &mut [f64]) {
        let y = Self::duals_vec(&mut self.factor, &self.basic, self.m, &self.cost);
        for (j, dj) in d.iter_mut().enumerate() {
            *dj = if self.statuses[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                0.0
            } else {
                self.cost[j] - self.column_dot(j, &y)
            };
        }
    }

    /// Refactorises the current basis; on singularity falls back to the
    /// all-logical basis (which is always factorisable).
    fn refactorize_or_reset(&mut self) -> Result<(), LpError> {
        if self.refactorize().is_ok() {
            return Ok(());
        }
        self.cold_basis();
        if self.track_dse {
            // The basis itself changed wholesale; the weights describe the
            // old one.
            self.dse_reset_weights();
        }
        self.refactorize()
            .map_err(|_| LpError::InvalidModel("logical basis is singular".into()))
    }

    /// Extracts the solution in the model's original sense, consuming the
    /// solver (the factorisation moves into the returned [`Basis`]).
    fn extract(mut self) -> (LpSolution, Basis) {
        self.ensure_x_basic();
        let mut values = vec![0.0; self.n];
        for (j, value) in values.iter_mut().enumerate() {
            *value = match self.statuses[j] {
                VarStatus::Basic => 0.0, // filled below
                _ => self.nonbasic_value(j),
            };
        }
        for (k, &j) in self.basic.iter().enumerate() {
            if j < self.n {
                values[j] = self.x_basic[k];
            }
        }
        // Clamp round-off outside the bounds.
        for (j, v) in values.iter_mut().enumerate() {
            let (l, u) = (self.lp.lower_bounds()[j], self.lp.upper_bounds()[j]);
            *v = v.clamp(l.min(u), u.max(l));
        }
        let objective: f64 = self
            .lp
            .objective()
            .iter()
            .zip(&values)
            .map(|(c, x)| c * x)
            .sum();
        let solution = LpSolution {
            values,
            objective,
            iterations: self.iterations,
            refactorizations: self.refactorizations,
            dual_iterations: self.dual_iterations,
            bound_flips: self.bound_flips,
        };
        (solution, self.into_snapshot())
    }
}

/// Extracts simplex tableau rows for the given *basic structural* variables
/// under `basis` (which must belong to exactly this model — same variable
/// and constraint counts). Requested variables that are not basic are
/// skipped silently.
pub(crate) fn tableau_rows(
    lp: &LinearProgram,
    basis: &Basis,
    basic_vars: &[usize],
) -> Result<Vec<TableauRow>, LpError> {
    if basis.num_structural > lp.num_vars() || basis.num_rows() > lp.num_constraints() {
        return Err(LpError::InvalidModel(
            "tableau basis does not match the model dimensions".into(),
        ));
    }
    let mut solver = Solver::new(lp, Some(basis))?;
    // A basis from a *smaller* model (rows/variables appended since it was
    // taken — the branch-and-cut incremental-row path) is reconciled by
    // `Solver::new` exactly like a warm start: appended rows enter with
    // their logical variable basic, which is itself a valid basis of the
    // grown model and yields a meaningful tableau. What must be rejected
    // is the singular-basis fallback, where the solver silently dropped
    // the requested basis for the all-logical one.
    let n = lp.num_vars();
    let old_n = basis.num_structural;
    let mut expected: Vec<usize> = basis
        .basic
        .iter()
        .map(|&v| if v < old_n { v } else { n + (v - old_n) })
        .collect();
    expected.extend(n + basis.num_rows()..n + lp.num_constraints());
    if solver.basic != expected {
        // The warm basis was singular and Solver fell back to the logical
        // basis; a tableau of a different basis would be meaningless.
        return Err(LpError::InvalidModel(
            "tableau basis is singular for this model".into(),
        ));
    }
    solver.compute_x_basic();
    let mut rows = Vec::with_capacity(basic_vars.len());
    for &var in basic_vars {
        let Some(pos) = solver.basic.iter().position(|&j| j == var) else {
            continue;
        };
        // Row `pos` of B⁻¹A: ᾱ_j = (e_posᵀ B⁻¹)·a_j.
        let mut rho = vec![0.0; solver.m];
        solver.factor.btran_unit(pos, &mut rho);
        let mut entries = Vec::new();
        for j in 0..solver.n + solver.m {
            if solver.statuses[j] == VarStatus::Basic {
                continue;
            }
            // Fixed *logical* variables (equality-row slacks, pinned at 0
            // by the model itself) are omitted: they can never deviate.
            // Fixed *structural* variables are reported — a variable fixed
            // by a branching tightening is only constant inside that
            // subtree, and a cut generator must see it to shift it (and to
            // judge the validity of the shift) rather than silently absorb
            // it as a constant.
            if j >= solver.n && solver.lower[j] == solver.upper[j] {
                continue;
            }
            let coeff = solver.column_dot(j, &rho);
            if coeff.abs() <= 1e-11 {
                continue;
            }
            let status = match solver.statuses[j] {
                VarStatus::AtLower => NonbasicStatus::AtLower,
                VarStatus::AtUpper => NonbasicStatus::AtUpper,
                VarStatus::Free => NonbasicStatus::Free,
                VarStatus::Basic => unreachable!("filtered above"),
            };
            entries.push(TableauEntry {
                var: j,
                coeff,
                status,
            });
        }
        rows.push(TableauRow {
            basic_var: var,
            value: solver.x_basic[pos],
            entries,
        });
    }
    Ok(rows)
}

/// Solves `lp`, optionally warm-starting from `warm` (see [`Basis`]).
pub(crate) fn solve(
    lp: &LinearProgram,
    warm: Option<&Basis>,
) -> Result<(LpSolution, Basis), LpError> {
    if crate::fault::fire("lp.revised.solve") {
        return Err(LpError::InvalidModel(
            "forced singular basis (failpoint)".into(),
        ));
    }
    let debug = std::env::var_os("RFIC_LP_DEBUG").is_some();
    let t0 = std::time::Instant::now();
    let mut solver = Solver::new(lp, warm)?;
    let mut dual_iters = 0;
    if warm.is_some() {
        let r = solver.dual();
        dual_iters = solver.iterations;
        r?;
        // Finish (or recover) with the primal: a no-op when the dual run
        // already reached the optimum.
    }
    let result = solver.primal();
    if debug && t0.elapsed() > std::time::Duration::from_millis(500) {
        eprintln!(
            "[lp] n={} m={} warm={} dual_iters={dual_iters} total_iters={} refactors={} stall={} elapsed={:?} result={result:?}",
            solver.n,
            solver.m,
            warm.is_some(),
            solver.iterations,
            solver.refactorizations,
            solver.stall,
            t0.elapsed()
        );
    }
    result?;
    Ok(solver.extract())
}
