//! Linear-program model types.

use std::fmt;

use crate::dense;
use crate::revised::{self, Basis};

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Minimise the objective.
    #[default]
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Pricing rule of the simplex engines.
///
/// The default devex rule prices the *primal* over a maintained candidate
/// list with reference-framework weights — the fast path for cold solves.
/// The classic Dantzig rule (full most-negative-reduced-cost scan every
/// pivot) is retained so tests and benchmarks can pin the old behaviour
/// and cross-check the paths against each other and the dense oracle.
/// [`PricingRule::DualSteepestEdge`] instead accelerates the *dual*
/// engine — the warm branch-and-bound re-solve path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Devex reference-framework pricing over a candidate list with
    /// periodic full refreshes (partial pricing).
    #[default]
    Devex,
    /// Full Dantzig scan: recompute every reduced cost each pivot and take
    /// the most negative. The pinned pre-devex behaviour — and a faithful
    /// reproduction of the old pivot sequence, ratio-test tie-breaks
    /// included.
    Dantzig,
    /// Dual steepest-edge pricing with the bound-flipping (long-step)
    /// dual ratio test.
    ///
    /// The *dual* engine selects its leaving row by `δ²/β` (bound
    /// violation squared over a Forrest–Goldfarb reference weight
    /// approximating `‖B⁻ᵀeᵣ‖²`, maintained incrementally from the
    /// FTRAN'd entering column) instead of by maximum violation, and its
    /// ratio test sweeps multiple breakpoints of the piecewise-linear
    /// dual objective, flipping boxed nonbasic variables bound-to-bound
    /// in one batched step. The *primal* engine under this rule behaves
    /// exactly like [`PricingRule::Dantzig`] (full scan, exact ratio
    /// test), so cold solves stay on the pinned trajectory and the rule
    /// only changes the warm dual re-solve path it is meant to speed up.
    DualSteepestEdge,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintOp::Le => f.write_str("<="),
            ConstraintOp::Ge => f.write_str(">="),
            ConstraintOp::Eq => f.write_str("=="),
        }
    }
}

/// A linear constraint `sum(coeff_i * x_i) op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficient list `(variable index, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// The solver-side view of the constraint matrix: CSC storage plus the
/// FNV-1a fingerprint of `(n, m, matrix)` that keys the warm-start
/// factorisation cache.
///
/// Building this costs one pass over every non-zero, which used to be paid
/// by *every* solve — including the thousands of warm branch-and-bound node
/// re-solves whose matrix never changes. It is therefore memoised on the
/// [`LinearProgram`] (shared behind an [`Arc`](std::sync::Arc), invalidated
/// by structural mutations; bound/objective/limit changes keep it).
#[derive(Debug)]
pub(crate) struct MatrixCache {
    /// Structural columns in compressed-sparse-column form.
    pub matrix: crate::sparse::CscMatrix,
    /// Row-major mirror of `matrix` for the dual simplex's sparse pivot-row
    /// pricing (see [`crate::sparse::CsrMatrix`]).
    pub rows: crate::sparse::CsrMatrix,
    /// FNV-1a fingerprint of `(num_vars, num_constraints, matrix)`.
    pub fingerprint: u64,
}

/// A shared cooperative cancellation flag, checked by the simplex pivot
/// loops at the same cadence as the [`LinearProgram::set_time_limit`]
/// deadline. Cloning shares the flag; once [`CancelToken::cancel`] is
/// called, every in-flight and future solve carrying the token aborts
/// with [`LpError::TimeLimit`] at its next limit check.
///
/// Equality is *identity* (two tokens compare equal when they share the
/// flag), so carrying a token does not break structural comparison of the
/// models holding it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation: every solve sharing this token stops at its
    /// next limit check. Irrevocable.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// A linear program over `num_vars` variables.
///
/// Variables default to bounds `[0, +inf)`; use
/// [`LinearProgram::set_bounds`] for other ranges (including free
/// variables via `f64::NEG_INFINITY` / `f64::INFINITY`).
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    sense: Sense,
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    constraints: Vec<Constraint>,
    iteration_limit: usize,
    time_limit: Option<std::time::Duration>,
    cancel: Option<CancelToken>,
    pricing: PricingRule,
    /// Memoised constraint-matrix view (see [`MatrixCache`]); cleared by
    /// [`LinearProgram::add_var`] and [`LinearProgram::add_constraint`].
    matrix_cache: std::sync::OnceLock<std::sync::Arc<MatrixCache>>,
}

impl PartialEq for LinearProgram {
    fn eq(&self, other: &Self) -> bool {
        // The matrix cache is derived state, not model identity.
        self.num_vars == other.num_vars
            && self.sense == other.sense
            && self.objective == other.objective
            && self.lower == other.lower
            && self.upper == other.upper
            && self.constraints == other.constraints
            && self.iteration_limit == other.iteration_limit
            && self.time_limit == other.time_limit
            && self.cancel == other.cancel
            && self.pricing == other.pricing
    }
}

/// Result of a successful LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal value of every variable, indexed as in the model.
    pub values: Vec<f64>,
    /// Optimal objective value (in the model's own sense).
    pub objective: f64,
    /// Number of simplex pivots performed (both phases, primal and dual).
    pub iterations: usize,
    /// Number of from-scratch basis refactorisations performed (the other
    /// half of the solve cost next to the pivots; warm starts exist to
    /// drive this to zero).
    pub refactorizations: usize,
    /// Subset of `iterations` performed by the dual engine (the warm
    /// re-solve path dual steepest-edge pricing accelerates).
    pub dual_iterations: usize,
    /// Nonbasic bound flips applied by the long-step (bound-flipping)
    /// dual ratio test — each batch rides on one dual pivot, so a high
    /// flip-per-pivot ratio is the signature of the long-step test paying
    /// off on boxed degenerate models.
    pub bound_flips: usize,
}

/// Error returned by [`LinearProgram::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The simplex iteration limit was exceeded (numerical cycling).
    IterationLimit,
    /// The wall-clock limit set via [`LinearProgram::set_time_limit`] was
    /// exceeded.
    TimeLimit,
    /// The model itself is malformed (bad index, NaN coefficient, crossed
    /// bounds, ...).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => f.write_str("linear program is infeasible"),
            LpError::Unbounded => f.write_str("linear program is unbounded"),
            LpError::IterationLimit => f.write_str("simplex iteration limit exceeded"),
            LpError::TimeLimit => f.write_str("simplex wall-clock limit exceeded"),
            LpError::InvalidModel(msg) => write!(f, "invalid linear program: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

impl LinearProgram {
    /// Creates a linear program with `num_vars` variables, all with bounds
    /// `[0, +inf)` and objective coefficient `0`.
    pub fn new(num_vars: usize, sense: Sense) -> LinearProgram {
        LinearProgram {
            num_vars,
            sense,
            objective: vec![0.0; num_vars],
            lower: vec![0.0; num_vars],
            upper: vec![f64::INFINITY; num_vars],
            constraints: Vec::new(),
            iteration_limit: 50_000,
            time_limit: None,
            cancel: None,
            pricing: PricingRule::default(),
            matrix_cache: std::sync::OnceLock::new(),
        }
    }

    /// Adds a fresh variable with bounds `[0, +inf)` and returns its index.
    pub fn add_var(&mut self) -> usize {
        self.matrix_cache = std::sync::OnceLock::new();
        self.objective.push(0.0);
        self.lower.push(0.0);
        self.upper.push(f64::INFINITY);
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Variable bounds `(lower, upper)`.
    pub fn bounds(&self, var: usize) -> (f64, f64) {
        (self.lower[var], self.upper[var])
    }

    /// Constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Sets the objective coefficient of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Sets the bounds of a variable. Use `f64::NEG_INFINITY` /
    /// `f64::INFINITY` for unbounded sides.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_bounds(&mut self, var: usize, lower: f64, upper: f64) {
        self.lower[var] = lower;
        self.upper[var] = upper;
    }

    /// Overrides the simplex iteration limit.
    pub fn set_iteration_limit(&mut self, limit: usize) {
        self.iteration_limit = limit;
    }

    /// Selects the primal pricing rule (default [`PricingRule::Devex`]).
    pub fn set_pricing(&mut self, pricing: PricingRule) {
        self.pricing = pricing;
    }

    /// The configured primal pricing rule.
    pub fn pricing(&self) -> PricingRule {
        self.pricing
    }

    /// Sets an optional wall-clock deadline for a solve; `None` (the
    /// default) means unlimited. Exceeding it returns
    /// [`LpError::TimeLimit`]. Callers running many solves under a global
    /// budget (branch and bound) use this to keep a single pathological LP
    /// from blowing the budget.
    pub fn set_time_limit(&mut self, limit: Option<std::time::Duration>) {
        self.time_limit = limit;
    }

    /// Attaches a cooperative [`CancelToken`], checked by the pivot loops
    /// at the same cadence as the wall-clock deadline; a cancelled solve
    /// returns [`LpError::TimeLimit`]. Clones of the program share the
    /// token, which is how branch-and-bound node LPs inherit a job-level
    /// cancellation.
    pub fn set_cancel_token(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Adds a constraint from a sparse coefficient list. Repeated indices
    /// are summed.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64) {
        self.matrix_cache = std::sync::OnceLock::new();
        self.constraints.push(Constraint { coeffs, op, rhs });
    }

    /// Replaces the bounds of one variable as a **value patch**: the
    /// constraint matrix is untouched, so neither the memoised
    /// [`MatrixCache`] (and its fingerprint) nor any [`Basis`]
    /// factorisation keyed on that fingerprint is invalidated. A basis
    /// captured from a previous solve of this program re-enters *live* —
    /// factorisation and dual steepest-edge weights included — and the
    /// patched model re-solves dually in a handful of pivots.
    ///
    /// This is the contract the parameter-sweep fast path relies on:
    /// value edits (`patch_bounds` / [`LinearProgram::patch_costs`] /
    /// [`LinearProgram::patch_rhs`]) preserve the cache, structural edits
    /// ([`LinearProgram::add_var`] / [`LinearProgram::add_constraint`])
    /// still reset it.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn patch_bounds(&mut self, var: usize, lower: f64, upper: f64) {
        self.lower[var] = lower;
        self.upper[var] = upper;
    }

    /// Replaces objective coefficients as a value patch (see
    /// [`LinearProgram::patch_bounds`] for the invalidation contract).
    /// Entries not listed keep their current coefficient.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn patch_costs(&mut self, coeffs: &[(usize, f64)]) {
        for &(var, coeff) in coeffs {
            self.objective[var] = coeff;
        }
    }

    /// Replaces the right-hand side of one constraint as a value patch
    /// (see [`LinearProgram::patch_bounds`] for the invalidation
    /// contract). The coefficient list and operator are untouched, so the
    /// matrix fingerprint — which deliberately excludes RHS values — stays
    /// valid.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn patch_rhs(&mut self, row: usize, rhs: f64) {
        self.constraints[row].rhs = rhs;
    }

    /// The fingerprint of the memoised constraint-matrix view. Value
    /// patches ([`Self::patch_bounds`] and friends) leave it unchanged;
    /// structural edits ([`Self::add_var`], [`Self::add_constraint`])
    /// reset it. Retained bases and factorisations are adoptable exactly
    /// when fingerprints match, so this is the observable invalidation
    /// contract of the patch API.
    pub fn matrix_fingerprint(&self) -> u64 {
        self.matrix_cache().fingerprint
    }

    /// The memoised CSC view of the constraint matrix with its fingerprint,
    /// built on first use and shared by every subsequent solve of this
    /// model (and its bound-mutated clones, which is what branch-and-bound
    /// node re-solves are).
    pub(crate) fn matrix_cache(&self) -> std::sync::Arc<MatrixCache> {
        self.matrix_cache
            .get_or_init(|| {
                let n = self.num_vars;
                let m = self.constraints.len();
                let columns: Vec<Vec<(usize, f64)>> = {
                    let mut cols = vec![Vec::new(); n];
                    for (r, con) in self.constraints.iter().enumerate() {
                        for &(v, c) in &con.coeffs {
                            cols[v].push((r, c));
                        }
                    }
                    cols
                };
                let matrix = crate::sparse::CscMatrix::from_columns(m, &columns);
                let rows = crate::sparse::CsrMatrix::from_rows(
                    n,
                    &self
                        .constraints
                        .iter()
                        .map(|con| con.coeffs.clone())
                        .collect::<Vec<_>>(),
                );
                let fingerprint = {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    let mut mix = |x: u64| {
                        h ^= x;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    };
                    mix(n as u64);
                    mix(m as u64);
                    for j in 0..n {
                        for (r, v) in matrix.col_iter(j) {
                            mix(r as u64);
                            mix(v.to_bits());
                        }
                    }
                    h
                };
                std::sync::Arc::new(MatrixCache {
                    matrix,
                    rows,
                    fingerprint,
                })
            })
            .clone()
    }

    /// Validates indices, coefficients and bounds.
    fn validate(&self) -> Result<(), LpError> {
        for (i, (&l, &u)) in self.lower.iter().zip(&self.upper).enumerate() {
            if l.is_nan() || u.is_nan() {
                return Err(LpError::InvalidModel(format!("NaN bound on variable {i}")));
            }
            if l > u {
                return Err(LpError::InvalidModel(format!(
                    "variable {i} has crossed bounds [{l}, {u}]"
                )));
            }
        }
        for (i, c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "non-finite objective coefficient on variable {i}"
                )));
            }
        }
        for (ci, con) in self.constraints.iter().enumerate() {
            if !con.rhs.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "non-finite rhs in constraint {ci}"
                )));
            }
            for &(v, c) in &con.coeffs {
                if v >= self.num_vars {
                    return Err(LpError::InvalidModel(format!(
                        "constraint {ci} references unknown variable {v}"
                    )));
                }
                if !c.is_finite() {
                    return Err(LpError::InvalidModel(format!(
                        "non-finite coefficient in constraint {ci}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solves the linear program with the sparse bounded-variable revised
    /// simplex method (cold start).
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies all constraints/bounds.
    /// * [`LpError::Unbounded`] — the objective can be improved without limit.
    /// * [`LpError::IterationLimit`] — the pivot limit was exhausted.
    /// * [`LpError::InvalidModel`] — malformed input (NaN, bad index, ...).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.validate()?;
        revised::solve(self, None).map(|(solution, _)| solution)
    }

    /// Presolves the model: removes fixed/empty columns and
    /// empty/singleton/redundant/forcing rows, substitutes doubleton
    /// equalities and free column singletons, tightens bounds from row
    /// activity, and equilibrates coefficients with power-of-two
    /// geometric-mean scaling.
    ///
    /// Returns the reduced problem together with a [`crate::Postsolve`]
    /// transform that restores full-space solutions and maps a [`Basis`]
    /// between the two spaces. `integer` optionally marks integer columns
    /// (same indexing as the variables): their bounds are rounded, they
    /// are never substituted away and they keep unit scale factors, so a
    /// MILP caller can branch and separate cuts in the reduced space.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — presolve proved the model infeasible.
    /// * [`LpError::Unbounded`] — an unconstrained column improves the
    ///   objective without limit.
    /// * [`LpError::InvalidModel`] — malformed input (NaN, bad index, ...).
    pub fn presolve(
        &self,
        config: &crate::PresolveConfig,
        integer: Option<&[bool]>,
    ) -> Result<crate::Presolved, LpError> {
        self.validate()?;
        crate::presolve::run(self, config, integer)
    }

    /// Solves the linear program, optionally warm-starting from the
    /// [`Basis`] of a previous solve, and returns the optimal basis for the
    /// next warm start.
    ///
    /// The warm basis may come from a *smaller* model: variables and
    /// constraints appended since the basis was taken are reconciled
    /// automatically (new rows enter with their logical variable basic),
    /// which makes branch-and-bound bound changes and lazy constraint
    /// separation cheap dual re-solves. A stale or singular basis silently
    /// falls back to a cold start.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearProgram::solve`].
    pub fn solve_warm(&self, warm: Option<&Basis>) -> Result<(LpSolution, Basis), LpError> {
        self.validate()?;
        revised::solve(self, warm)
    }

    /// Extracts the simplex tableau rows of the given *basic structural*
    /// variables under `basis` (typically the optimal basis returned by
    /// [`LinearProgram::solve_warm`] on this very model).
    ///
    /// This is the raw material for cutting planes: a Gomory cut is a
    /// rounding argument applied to one tableau row of a fractional basic
    /// integer variable. Requested variables that are not basic in `basis`
    /// are skipped.
    ///
    /// # Errors
    ///
    /// [`LpError::InvalidModel`] when `basis` does not match this model's
    /// dimensions or is numerically singular for it.
    pub fn tableau_rows(
        &self,
        basis: &Basis,
        basic_vars: &[usize],
    ) -> Result<Vec<crate::TableauRow>, LpError> {
        self.validate()?;
        revised::tableau_rows(self, basis, basic_vars)
    }

    /// Solves with the legacy dense two-phase tableau simplex.
    ///
    /// Retained as a reference oracle for regression tests; production code
    /// paths use [`LinearProgram::solve`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearProgram::solve`].
    #[doc(hidden)]
    pub fn solve_dense(&self) -> Result<LpSolution, LpError> {
        self.validate()?;
        dense::solve(self)
    }

    pub(crate) fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    pub(crate) fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    pub(crate) fn iteration_limit(&self) -> usize {
        self.iteration_limit
    }

    pub(crate) fn time_limit(&self) -> Option<std::time::Duration> {
        self.time_limit
    }

    pub(crate) fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_accessors() {
        let mut lp = LinearProgram::new(2, Sense::Maximize);
        assert_eq!(lp.num_vars(), 2);
        let v = lp.add_var();
        assert_eq!(v, 2);
        assert_eq!(lp.num_vars(), 3);
        lp.set_objective_coeff(v, 4.0);
        lp.set_bounds(v, -1.0, 5.0);
        assert_eq!(lp.bounds(v), (-1.0, 5.0));
        assert_eq!(lp.objective()[v], 4.0);
        lp.add_constraint(vec![(0, 1.0), (2, -1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.constraints()[0].op, ConstraintOp::Ge);
        assert_eq!(lp.sense(), Sense::Maximize);
    }

    #[test]
    fn validation_catches_bad_models() {
        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.add_constraint(vec![(3, 1.0)], ConstraintOp::Le, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::InvalidModel(_))));

        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.set_bounds(0, 2.0, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::InvalidModel(_))));

        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.set_objective_coeff(0, f64::NAN);
        assert!(matches!(lp.solve(), Err(LpError::InvalidModel(_))));

        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.add_constraint(vec![(0, f64::INFINITY)], ConstraintOp::Le, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert!(LpError::InvalidModel("x".into()).to_string().contains("x"));
        assert_eq!(ConstraintOp::Le.to_string(), "<=");
    }
}
