//! Presolve, scaling and postsolve for [`LinearProgram`].
//!
//! The layout models the P-ILP flow generates mix µm-scale geometry
//! coefficients with big-M routing disjunctions, and they carry a lot of
//! slack structure: fixed columns from pinned devices, singleton rows from
//! simple bounds written as constraints, doubleton equalities from
//! coordinate chaining, and rows made redundant by variable bounds. This
//! module removes that structure *before* the revised simplex sees the
//! model and undoes the reductions afterwards:
//!
//! 1. **Presolve** ([`run`], surfaced as [`LinearProgram::presolve`]) applies
//!    a fixpoint loop of reductions — empty/singleton/redundant/forcing
//!    rows, fixed/empty columns, activity-based bound tightening, free
//!    column singletons and doubleton-equality substitution — and then
//!    geometric-mean equilibration (power-of-two scale factors so solution
//!    values round-trip exactly).
//! 2. **Postsolve** ([`Postsolve`]) replays the reduction stack in reverse
//!    to reconstruct the full-model primal solution and objective, and maps
//!    a [`Basis`] between the full and reduced spaces in both directions so
//!    the warm-start protocol survives presolve unchanged.
//!
//! The reduced problem is always *equivalent* for feasible models: any
//! optimal solution of the reduced problem postsolves to an optimal
//! solution of the original with `reduced objective + objective_offset()`.
//! For infeasible models presolve may prove infeasibility early (returning
//! [`LpError::Infeasible`]); for models that are both unbounded in a
//! removed column and infeasible elsewhere, presolve may report
//! [`LpError::Unbounded`] where the full solve would have reported
//! infeasibility — the standard presolve ambiguity, documented in
//! `DESIGN.md`.

use crate::problem::{Constraint, LinearProgram, LpError, LpSolution};
use crate::revised::{Basis, VarStatus};
use crate::{ConstraintOp, Sense};

/// Tolerance for treating a coefficient as an exact zero during presolve.
const DROP_TOL: f64 = 1e-12;
/// Feasibility tolerance used when classifying rows and fixing columns.
const FEAS_TOL: f64 = 1e-7;
/// Bounds further out than this are treated as numerically infinite and
/// never tightened onto a variable.
const HUGE_BOUND: f64 = 1e15;

/// Configuration for the presolve layer.
///
/// The default enables every reduction plus scaling with a bounded number
/// of fixpoint passes; [`PresolveConfig::off`] disables the layer entirely
/// (the golden/determinism suites cross-check both settings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PresolveConfig {
    /// Master switch: when `false` presolve is the identity transform.
    pub enabled: bool,
    /// Remove empty, singleton, redundant and forcing rows.
    pub eliminate_rows: bool,
    /// Remove fixed and empty columns.
    pub eliminate_cols: bool,
    /// Substitute doubleton equalities and free column singletons.
    pub substitute: bool,
    /// Tighten variable bounds from row activity.
    pub tighten_bounds: bool,
    /// Apply geometric-mean equilibration (power-of-two factors).
    pub scale: bool,
    /// Coefficient-spread threshold (`max |a| / min |a|` over the reduced
    /// rows) below which scaling is skipped even when [`scale`] is on.
    /// Equilibration cannot improve an already well-scaled matrix (the
    /// power-of-two factors round to 1) but still perturbs the Devex/DSE
    /// pricing frameworks enough to change the pivot trajectory, so by
    /// default it only engages past a spread of `1e4` — where it starts
    /// buying real stability. Set to `0.0` to scale unconditionally.
    ///
    /// [`scale`]: PresolveConfig::scale
    pub scale_trigger: f64,
    /// Maximum number of reduction fixpoint passes.
    pub max_passes: usize,
}

impl Default for PresolveConfig {
    fn default() -> Self {
        PresolveConfig {
            enabled: true,
            eliminate_rows: true,
            eliminate_cols: true,
            substitute: true,
            tighten_bounds: true,
            scale: true,
            scale_trigger: 1e4,
            max_passes: 5,
        }
    }
}

impl PresolveConfig {
    /// A configuration with the whole layer switched off: `presolve()`
    /// returns the original problem unchanged and postsolve is the
    /// identity (basis mappings pass the factorisation cache through).
    pub fn off() -> Self {
        PresolveConfig {
            enabled: false,
            ..PresolveConfig::default()
        }
    }
}

/// Counters describing what presolve did to a model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PresolveStats {
    /// Constraint rows removed (empty, singleton, redundant, forcing,
    /// substituted).
    pub rows_removed: usize,
    /// Structural columns removed (fixed, empty, substituted).
    pub cols_removed: usize,
    /// Constraint-matrix nonzeros removed, net of substitution fill-in.
    pub nonzeros_removed: usize,
    /// Variable bounds tightened from row activity (including integer
    /// rounding).
    pub bound_tightenings: usize,
    /// `max |a| / min |a|` over the surviving rows before scaling.
    pub condition_before: f64,
    /// The same estimate after geometric-mean equilibration.
    pub condition_after: f64,
}

/// The result of presolving a [`LinearProgram`]: the reduced problem plus
/// the [`Postsolve`] transform that maps solutions and bases back.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced (and scaled) problem to hand to the solver.
    pub lp: LinearProgram,
    /// Reverse transform: solution restoration and basis mapping.
    pub postsolve: Postsolve,
    /// Reduction counters for reporting.
    pub stats: PresolveStats,
}

/// One entry of the reduction stack. Coefficients stored inside an entry
/// are the values *at the time of the reduction* (original, unscaled
/// model), which makes reverse replay well defined: every variable a later
/// reduction references is restored before the entry replays.
#[derive(Debug, Clone)]
enum Reduction {
    /// Column `col` fixed at `value`. `at_upper` records which bound it
    /// was fixed at, for basis mapping.
    FixedCol {
        col: usize,
        value: f64,
        at_upper: bool,
    },
    /// Row `row` removed without touching any column (empty, singleton,
    /// redundant or forcing rows after their columns were fixed).
    RemovedRow { row: usize },
    /// Column `col` eliminated through equality row `row`:
    /// `cdiv * x_col + Σ coeffs · x = rhs`, so
    /// `x_col = (rhs − Σ coeffs · x) / cdiv`.
    Substituted {
        col: usize,
        row: usize,
        coeffs: Vec<(usize, f64)>,
        rhs: f64,
        cdiv: f64,
    },
}

/// The reverse transform produced by presolve.
///
/// Maps reduced-space primal solutions back to the full model
/// ([`Postsolve::restore_solution`]) and maps a [`Basis`] in both
/// directions ([`Postsolve::basis_to_full`], [`Postsolve::basis_to_reduced`])
/// so warm starts survive presolve. The mapping contract, including the
/// lenient grown-model direction used by lazy constraint separation, is
/// documented in `DESIGN.md`.
#[derive(Debug, Clone)]
pub struct Postsolve {
    orig_num_vars: usize,
    orig_num_rows: usize,
    objective_offset: f64,
    /// Original indices of the surviving columns, in reduced order.
    kept_cols: Vec<usize>,
    /// Full column index → reduced column index (None when removed).
    col_map: Vec<Option<usize>>,
    /// Original indices of the surviving rows, in reduced order.
    kept_rows: Vec<usize>,
    /// Full row index → reduced row index (None when removed).
    row_map: Vec<Option<usize>>,
    /// Per-full-column scale factor `s_j` (1.0 for removed columns):
    /// `x_full = s_j · x_reduced`.
    col_scale: Vec<f64>,
    /// Per-full-row scale factor `r_i` (1.0 for removed rows).
    row_scale: Vec<f64>,
    /// Reductions in application order; replayed in reverse.
    stack: Vec<Reduction>,
    /// True when the transform is a no-op (no reductions, unit scales):
    /// solution restoration clones and basis mappings pass the
    /// factorisation cache through untouched.
    identity: bool,
}

impl Postsolve {
    /// The identity transform for a problem with `num_vars` columns and
    /// `num_rows` rows.
    fn identity(num_vars: usize, num_rows: usize) -> Self {
        Postsolve {
            orig_num_vars: num_vars,
            orig_num_rows: num_rows,
            objective_offset: 0.0,
            kept_cols: (0..num_vars).collect(),
            col_map: (0..num_vars).map(Some).collect(),
            kept_rows: (0..num_rows).collect(),
            row_map: (0..num_rows).map(Some).collect(),
            col_scale: vec![1.0; num_vars],
            row_scale: vec![1.0; num_rows],
            stack: Vec::new(),
            identity: true,
        }
    }

    /// Constant added to the reduced objective value to recover the full
    /// objective (contributions of fixed and substituted columns).
    pub fn objective_offset(&self) -> f64 {
        self.objective_offset
    }

    /// Whether this transform is a no-op (presolve disabled or nothing to
    /// reduce, and all scale factors exactly one).
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Original indices of the columns that survive into the reduced
    /// problem, in reduced-column order.
    pub fn kept_columns(&self) -> &[usize] {
        &self.kept_cols
    }

    /// Number of variables in the original (full) problem.
    pub fn full_num_vars(&self) -> usize {
        self.orig_num_vars
    }

    /// Number of constraint rows in the original (full) problem.
    pub fn full_num_rows(&self) -> usize {
        self.orig_num_rows
    }

    /// Per-full-row equilibration factors `r_i` (1.0 for removed rows):
    /// reduced row `i` is the original row scaled by `r_i`. Exposed for
    /// reporting; primal restoration only needs the column factors.
    pub fn row_scales(&self) -> &[f64] {
        &self.row_scale
    }

    /// Map a reduced-space primal point back to the full variable space:
    /// unscale the surviving columns, then replay the reduction stack in
    /// reverse to reconstruct fixed and substituted columns.
    pub fn restore_values(&self, reduced: &[f64]) -> Vec<f64> {
        if self.identity {
            return reduced.to_vec();
        }
        let mut full = vec![0.0; self.orig_num_vars];
        for (j, &fj) in self.kept_cols.iter().enumerate() {
            full[fj] = reduced.get(j).copied().unwrap_or(0.0) * self.col_scale[fj];
        }
        for entry in self.stack.iter().rev() {
            match entry {
                Reduction::FixedCol { col, value, .. } => full[*col] = *value,
                Reduction::RemovedRow { .. } => {}
                Reduction::Substituted {
                    col,
                    coeffs,
                    rhs,
                    cdiv,
                    ..
                } => {
                    let mut acc = *rhs;
                    for &(k, a) in coeffs {
                        acc -= a * full[k];
                    }
                    full[*col] = acc / *cdiv;
                }
            }
        }
        full
    }

    /// Map a reduced-space [`LpSolution`] back to the full model: restore
    /// the primal values and add the objective offset. Work counters are
    /// carried over unchanged.
    pub fn restore_solution(&self, reduced: &LpSolution) -> LpSolution {
        if self.identity {
            return reduced.clone();
        }
        LpSolution {
            values: self.restore_values(&reduced.values),
            objective: reduced.objective + self.objective_offset,
            iterations: reduced.iterations,
            refactorizations: reduced.refactorizations,
            dual_iterations: reduced.dual_iterations,
            bound_flips: reduced.bound_flips,
        }
    }

    /// Lift a reduced-space basis to the full model.
    ///
    /// Surviving columns and rows copy their reduced status; removed
    /// structure gets the statically known status of the reduction that
    /// removed it (fixed columns nonbasic at their bound, removed rows'
    /// logicals basic, substituted columns basic with the substitution
    /// row's logical nonbasic). The result carries no factorisation and a
    /// zero fingerprint, so adopting it costs one refactorisation.
    pub fn basis_to_full(&self, basis: &Basis) -> Basis {
        if self.identity {
            return basis.clone();
        }
        let n = self.orig_num_vars;
        let m = self.orig_num_rows;
        let red_n = self.kept_cols.len();
        let red_m = self.kept_rows.len();
        if basis.num_structural() != red_n || basis.num_rows() != red_m {
            // Dimension mismatch: fall back to the all-logical basis shape
            // so the caller degrades to a cold start instead of panicking.
            let mut statuses = vec![VarStatus::AtLower; n + m];
            let basic: Vec<usize> = (n..n + m).collect();
            for &v in &basic {
                statuses[v] = VarStatus::Basic;
            }
            return Basis::from_mapping(statuses, basic, n);
        }

        let red_statuses = basis.statuses();
        let mut statuses = vec![VarStatus::AtLower; n + m];
        for (j, &fj) in self.kept_cols.iter().enumerate() {
            statuses[fj] = red_statuses[j];
        }
        for (i, &fi) in self.kept_rows.iter().enumerate() {
            statuses[n + fi] = red_statuses[red_n + i];
        }
        let mut basic: Vec<usize> = basis
            .basic_vars()
            .iter()
            .map(|&v| {
                if v < red_n {
                    self.kept_cols[v]
                } else {
                    n + self.kept_rows[v - red_n]
                }
            })
            .collect();
        for entry in &self.stack {
            match entry {
                Reduction::FixedCol { col, at_upper, .. } => {
                    statuses[*col] = if *at_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                }
                Reduction::RemovedRow { row } => {
                    statuses[n + row] = VarStatus::Basic;
                    basic.push(n + row);
                }
                Reduction::Substituted { col, row, .. } => {
                    statuses[*col] = VarStatus::Basic;
                    basic.push(*col);
                    statuses[n + row] = VarStatus::AtLower;
                }
            }
        }
        Basis::from_mapping(statuses, basic, n)
    }

    /// Project a full-model basis down to the reduced space, or `None`
    /// when no consistent reduced basis exists (the caller cold-starts).
    ///
    /// Lenient on dimensions: accepts a basis for a model with *at most*
    /// the original column count and *at most* the original row count, so
    /// a warm basis recorded before lazy-separation rows were appended
    /// still maps (the missing rows' logicals are made basic).
    pub fn basis_to_reduced(&self, basis: &Basis) -> Option<Basis> {
        if self.identity {
            return Some(basis.clone());
        }
        let fn_ = basis.num_structural();
        let fm = basis.num_rows();
        if fn_ > self.orig_num_vars || fm > self.orig_num_rows {
            return None;
        }
        let red_n = self.kept_cols.len();
        let red_m = self.kept_rows.len();
        let full_statuses = basis.statuses();

        // Nonbasic statuses for surviving structure; Basic entries are
        // re-derived from the final basic set below.
        let mut statuses = vec![VarStatus::AtLower; red_n + red_m];
        for (j, &fj) in self.kept_cols.iter().enumerate() {
            if fj < fn_ && full_statuses[fj] != VarStatus::Basic {
                statuses[j] = full_statuses[fj];
            }
        }
        for (i, &fi) in self.kept_rows.iter().enumerate() {
            if fi < fm {
                let s = full_statuses[fn_ + fi];
                if s != VarStatus::Basic {
                    statuses[red_n + i] = s;
                }
            }
        }

        let mut basic: Vec<usize> = Vec::with_capacity(red_m);
        let mut is_basic = vec![false; red_n + red_m];
        let push = |v: usize, basic: &mut Vec<usize>, is_basic: &mut Vec<bool>| {
            if !is_basic[v] && basic.len() < red_m {
                is_basic[v] = true;
                basic.push(v);
            }
        };
        for &v in basis.basic_vars() {
            let mapped = if v < fn_ {
                self.col_map[v].filter(|&j| j < red_n)
            } else {
                let fi = v - fn_;
                self.row_map.get(fi).copied().flatten().map(|i| red_n + i)
            };
            if let Some(rv) = mapped {
                push(rv, &mut basic, &mut is_basic);
            }
        }
        // Rows the full basis has never seen (appended after it was
        // recorded): their logicals start basic, matching `try_warm_basis`.
        for (i, &fi) in self.kept_rows.iter().enumerate() {
            if fi >= fm {
                push(red_n + i, &mut basic, &mut is_basic);
            }
        }
        // Fill any remaining deficit with surviving-row logicals.
        for i in 0..red_m {
            if basic.len() >= red_m {
                break;
            }
            push(red_n + i, &mut basic, &mut is_basic);
        }
        if basic.len() != red_m {
            return None;
        }
        for &v in &basic {
            statuses[v] = VarStatus::Basic;
        }
        Some(Basis::from_mapping(statuses, basic, red_n))
    }
}

/// Bounds on a row's activity given current variable bounds, tracking
/// infinite contributions separately so "activity without variable j" is
/// a constant-time query.
#[derive(Debug, Clone, Copy, Default)]
struct Activity {
    min: f64,
    max: f64,
    min_inf: usize,
    max_inf: usize,
}

impl Activity {
    fn min_total(&self) -> f64 {
        if self.min_inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.min
        }
    }
    fn max_total(&self) -> f64 {
        if self.max_inf > 0 {
            f64::INFINITY
        } else {
            self.max
        }
    }
    /// Minimum activity excluding the term `a·x_j` whose contribution to
    /// the minimum is `contrib` (possibly infinite).
    fn min_without(&self, contrib: f64) -> f64 {
        if contrib == f64::NEG_INFINITY {
            if self.min_inf > 1 {
                f64::NEG_INFINITY
            } else {
                self.min
            }
        } else if self.min_inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.min - contrib
        }
    }
    fn max_without(&self, contrib: f64) -> f64 {
        if contrib == f64::INFINITY {
            if self.max_inf > 1 {
                f64::INFINITY
            } else {
                self.max
            }
        } else if self.max_inf > 0 {
            f64::INFINITY
        } else {
            self.max - contrib
        }
    }
}

/// Working row during presolve.
#[derive(Debug, Clone)]
struct WRow {
    coeffs: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
    alive: bool,
}

/// Mutable presolve workspace over a copy of the model.
struct Work<'a> {
    /// +1 for minimisation, −1 for maximisation: `min_sign · obj` is the
    /// minimised objective, used when fixing empty columns.
    min_sign: f64,
    obj: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    integer: Option<&'a [bool]>,
    col_alive: Vec<bool>,
    rows: Vec<WRow>,
    offset: f64,
    stack: Vec<Reduction>,
    tightenings: usize,
}

impl<'a> Work<'a> {
    fn is_integer(&self, j: usize) -> bool {
        self.integer.map(|m| m[j]).unwrap_or(false)
    }

    /// Tighten `lower[j]`/`upper[j]` towards `[lo, hi]` (either may be
    /// infinite to leave that side alone). Integer variables round
    /// inwards. Returns `Err(Infeasible)` when the bounds cross by more
    /// than the feasibility tolerance.
    fn tighten(&mut self, j: usize, mut lo: f64, mut hi: f64) -> Result<(), LpError> {
        if self.is_integer(j) {
            if lo.is_finite() {
                lo = (lo - FEAS_TOL).ceil();
            }
            if hi.is_finite() {
                hi = (hi + FEAS_TOL).floor();
            }
        }
        if lo.is_finite() && lo.abs() > HUGE_BOUND {
            lo = f64::NEG_INFINITY;
        }
        if hi.is_finite() && hi.abs() > HUGE_BOUND {
            hi = f64::INFINITY;
        }
        let mut changed = false;
        if lo > self.lower[j] + FEAS_TOL * (1.0 + self.lower[j].abs()) {
            self.lower[j] = lo;
            changed = true;
        } else if self.is_integer(j) && lo > self.lower[j] {
            // Integer rounding applies exactly even below the improvement
            // threshold: a fractional bound is never feasible anyway.
            self.lower[j] = lo;
            changed = true;
        }
        if hi < self.upper[j] - FEAS_TOL * (1.0 + self.upper[j].abs())
            || (self.is_integer(j) && hi < self.upper[j])
        {
            self.upper[j] = hi;
            changed = true;
        }
        if changed {
            self.tightenings += 1;
        }
        if self.lower[j] > self.upper[j] + FEAS_TOL * (1.0 + self.upper[j].abs().min(HUGE_BOUND)) {
            return Err(LpError::Infeasible);
        }
        // Snap a crossed-within-tolerance pair so later fixed-column
        // detection sees a consistent interval.
        if self.lower[j] > self.upper[j] {
            let mid = 0.5 * (self.lower[j] + self.upper[j]);
            self.lower[j] = mid;
            self.upper[j] = mid;
        }
        Ok(())
    }

    /// Set bounds on `j` exactly (no improvement threshold), used where a
    /// substitution requires the mapped bounds verbatim. Integer rounding
    /// still applies.
    fn set_bounds_exact(&mut self, j: usize, mut lo: f64, mut hi: f64) -> Result<(), LpError> {
        if self.is_integer(j) {
            if lo.is_finite() {
                lo = (lo - FEAS_TOL).ceil();
            }
            if hi.is_finite() {
                hi = (hi + FEAS_TOL).floor();
            }
        }
        let mut changed = false;
        if lo > self.lower[j] {
            self.lower[j] = lo;
            changed = true;
        }
        if hi < self.upper[j] {
            self.upper[j] = hi;
            changed = true;
        }
        if changed {
            self.tightenings += 1;
        }
        if self.lower[j] > self.upper[j] + FEAS_TOL * (1.0 + self.upper[j].abs().min(HUGE_BOUND)) {
            return Err(LpError::Infeasible);
        }
        if self.lower[j] > self.upper[j] {
            let mid = 0.5 * (self.lower[j] + self.upper[j]);
            self.lower[j] = mid;
            self.upper[j] = mid;
        }
        Ok(())
    }

    /// Fix column `j` at `value`, propagating into every live row.
    fn fix_col(&mut self, j: usize, value: f64, at_upper: bool) {
        self.col_alive[j] = false;
        self.offset += self.obj[j] * value;
        for row in self.rows.iter_mut().filter(|r| r.alive) {
            if let Some(pos) = row.coeffs.iter().position(|&(k, _)| k == j) {
                let (_, a) = row.coeffs.swap_remove(pos);
                row.rhs -= a * value;
            }
        }
        self.stack.push(Reduction::FixedCol {
            col: j,
            value,
            at_upper,
        });
    }

    /// Number of live rows containing live column `j`.
    fn occupancy(&self, j: usize) -> usize {
        self.rows
            .iter()
            .filter(|r| r.alive && r.coeffs.iter().any(|&(k, _)| k == j))
            .count()
    }

    /// Activity bounds of row `r` over live columns.
    fn activity(&self, r: usize) -> Activity {
        let mut act = Activity::default();
        for &(j, a) in &self.rows[r].coeffs {
            let (lo, hi) = (self.lower[j], self.upper[j]);
            let (cmin, cmax) = if a > 0.0 {
                (a * lo, a * hi)
            } else {
                (a * hi, a * lo)
            };
            if cmin == f64::NEG_INFINITY {
                act.min_inf += 1;
            } else {
                act.min += cmin;
            }
            if cmax == f64::INFINITY {
                act.max_inf += 1;
            } else {
                act.max += cmax;
            }
        }
        act
    }
}

/// Run presolve on `lp`. `integer` optionally marks integer columns
/// (indexed like the problem's variables): integer bounds are rounded,
/// integer columns are never substituted away and keep unit scale factors
/// so branching and cut separation in the caller stay exact.
pub(crate) fn run(
    lp: &LinearProgram,
    config: &PresolveConfig,
    integer: Option<&[bool]>,
) -> Result<Presolved, LpError> {
    let n = lp.num_vars();
    let m = lp.num_constraints();
    if !config.enabled {
        let mut stats = PresolveStats::default();
        let cond = raw_condition(lp.constraints());
        stats.condition_before = cond;
        stats.condition_after = cond;
        return Ok(Presolved {
            lp: lp.clone(),
            postsolve: Postsolve::identity(n, m),
            stats,
        });
    }
    if let Some(mask) = integer {
        debug_assert_eq!(mask.len(), n, "integer mask length mismatch");
    }

    let mut work = Work {
        min_sign: match lp.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        },
        obj: lp.objective().to_vec(),
        lower: (0..n).map(|j| lp.bounds(j).0).collect(),
        upper: (0..n).map(|j| lp.bounds(j).1).collect(),
        integer,
        col_alive: vec![true; n],
        rows: lp
            .constraints()
            .iter()
            .map(|c| {
                // Sum duplicate indices and drop exact zeros so every
                // later pass can assume one entry per column.
                let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.coeffs.len());
                for &(j, a) in &c.coeffs {
                    match coeffs.iter_mut().find(|(k, _)| *k == j) {
                        Some((_, acc)) => *acc += a,
                        None => coeffs.push((j, a)),
                    }
                }
                coeffs.retain(|&(_, a)| a.abs() > DROP_TOL);
                WRow {
                    coeffs,
                    op: c.op,
                    rhs: c.rhs,
                    alive: true,
                }
            })
            .collect(),
        offset: 0.0,
        stack: Vec::new(),
        tightenings: 0,
    };
    let orig_nonzeros: usize = work.rows.iter().map(|r| r.coeffs.len()).sum();

    // Integer bounds round inwards before anything else looks at them.
    if integer.is_some() {
        for j in 0..n {
            let (lo, hi) = (work.lower[j], work.upper[j]);
            work.tighten(j, lo, hi)?;
        }
    }

    for _pass in 0..config.max_passes {
        let mut changed = false;
        if config.eliminate_rows {
            changed |= row_reductions(&mut work)?;
        }
        if config.tighten_bounds {
            changed |= tighten_bounds_pass(&mut work)?;
        }
        if config.eliminate_cols {
            changed |= col_reductions(&mut work)?;
        }
        if config.substitute {
            changed |= substitution_pass(&mut work)?;
        }
        if !changed {
            break;
        }
    }

    finish(lp, config, work, orig_nonzeros, n, m)
}

/// Empty, singleton, redundant and forcing rows. Returns whether anything
/// changed.
fn row_reductions(work: &mut Work) -> Result<bool, LpError> {
    let mut changed = false;
    for r in 0..work.rows.len() {
        if !work.rows[r].alive {
            continue;
        }
        let nnz = work.rows[r].coeffs.len();
        if nnz == 0 {
            let rhs = work.rows[r].rhs;
            let feas = FEAS_TOL * (1.0 + rhs.abs());
            let ok = match work.rows[r].op {
                ConstraintOp::Le => rhs >= -feas,
                ConstraintOp::Ge => rhs <= feas,
                ConstraintOp::Eq => rhs.abs() <= feas,
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
            work.rows[r].alive = false;
            work.stack.push(Reduction::RemovedRow { row: r });
            changed = true;
            continue;
        }
        if nnz == 1 {
            let (j, a) = work.rows[r].coeffs[0];
            if a.abs() <= DROP_TOL {
                continue;
            }
            let b = work.rows[r].rhs / a;
            let (lo, hi) = match (work.rows[r].op, a > 0.0) {
                (ConstraintOp::Eq, _) => (b, b),
                (ConstraintOp::Le, true) | (ConstraintOp::Ge, false) => (f64::NEG_INFINITY, b),
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => (b, f64::INFINITY),
            };
            work.tighten(j, lo, hi)?;
            work.rows[r].alive = false;
            work.stack.push(Reduction::RemovedRow { row: r });
            changed = true;
            continue;
        }
        // Activity-based redundant / forcing classification.
        let act = work.activity(r);
        let rhs = work.rows[r].rhs;
        let feas = FEAS_TOL * (1.0 + rhs.abs());
        let op = work.rows[r].op;
        let (amin, amax) = (act.min_total(), act.max_total());
        let infeasible = match op {
            ConstraintOp::Le => amin > rhs + feas,
            ConstraintOp::Ge => amax < rhs - feas,
            ConstraintOp::Eq => amin > rhs + feas || amax < rhs - feas,
        };
        if infeasible {
            return Err(LpError::Infeasible);
        }
        let redundant = match op {
            ConstraintOp::Le => amax <= rhs + feas,
            ConstraintOp::Ge => amin >= rhs - feas,
            ConstraintOp::Eq => amax <= rhs + feas && amin >= rhs - feas,
        };
        if redundant {
            work.rows[r].alive = false;
            work.stack.push(Reduction::RemovedRow { row: r });
            changed = true;
            continue;
        }
        // Forcing: the only feasible point of the row is at one extreme of
        // the activity range, fixing every variable in the row.
        let forcing_at_min = match op {
            ConstraintOp::Le | ConstraintOp::Eq => amin.is_finite() && amin >= rhs - feas,
            ConstraintOp::Ge => false,
        };
        let forcing_at_max = match op {
            ConstraintOp::Ge | ConstraintOp::Eq => amax.is_finite() && amax <= rhs + feas,
            ConstraintOp::Le => false,
        };
        if forcing_at_min || forcing_at_max {
            let coeffs = work.rows[r].coeffs.clone();
            work.rows[r].alive = false;
            for (j, a) in coeffs {
                // At the min extreme each term sits at its lower
                // contribution: x_j = l_j when a > 0, x_j = u_j when a < 0
                // (mirrored at the max extreme).
                let take_lower = (a > 0.0) == forcing_at_min;
                let v = if take_lower {
                    work.lower[j]
                } else {
                    work.upper[j]
                };
                work.fix_col(j, v, !take_lower);
            }
            work.stack.push(Reduction::RemovedRow { row: r });
            changed = true;
        }
    }
    Ok(changed)
}

/// Activity-based bound tightening over all live rows.
fn tighten_bounds_pass(work: &mut Work) -> Result<bool, LpError> {
    let before = work.tightenings;
    for r in 0..work.rows.len() {
        if !work.rows[r].alive || work.rows[r].coeffs.len() < 2 {
            continue;
        }
        let act = work.activity(r);
        let op = work.rows[r].op;
        let rhs = work.rows[r].rhs;
        let coeffs = work.rows[r].coeffs.clone();
        for (j, a) in coeffs {
            if a.abs() <= 1e-8 {
                continue;
            }
            let (lo, hi) = (work.lower[j], work.upper[j]);
            let (cmin, cmax) = if a > 0.0 {
                (a * lo, a * hi)
            } else {
                (a * hi, a * lo)
            };
            // Upper-side restriction: Σ ≤ rhs (Le/Eq rows).
            if matches!(op, ConstraintOp::Le | ConstraintOp::Eq) {
                let rest_min = act.min_without(cmin);
                if rest_min.is_finite() {
                    let slack = rhs - rest_min;
                    if a > 0.0 {
                        work.tighten(j, f64::NEG_INFINITY, slack / a)?;
                    } else {
                        work.tighten(j, slack / a, f64::INFINITY)?;
                    }
                }
            }
            // Lower-side restriction: Σ ≥ rhs (Ge/Eq rows).
            if matches!(op, ConstraintOp::Ge | ConstraintOp::Eq) {
                let rest_max = act.max_without(cmax);
                if rest_max.is_finite() {
                    let need = rhs - rest_max;
                    if a > 0.0 {
                        work.tighten(j, need / a, f64::INFINITY)?;
                    } else {
                        work.tighten(j, f64::NEG_INFINITY, need / a)?;
                    }
                }
            }
        }
    }
    Ok(work.tightenings != before)
}

/// Fixed and empty columns.
fn col_reductions(work: &mut Work) -> Result<bool, LpError> {
    let mut changed = false;
    for j in 0..work.col_alive.len() {
        if !work.col_alive[j] {
            continue;
        }
        let (lo, hi) = (work.lower[j], work.upper[j]);
        if lo.is_finite() && hi.is_finite() && hi - lo <= 1e-9 * (1.0 + lo.abs()) {
            work.fix_col(j, lo, false);
            changed = true;
            continue;
        }
        if work.occupancy(j) == 0 {
            // Empty column: fix at whichever bound minimises the
            // (minimised) objective. A profitable unbounded direction means
            // the whole problem is unbounded.
            let d = work.min_sign * work.obj[j];
            let (value, at_upper) = if d > DROP_TOL {
                if lo.is_finite() {
                    (lo, false)
                } else {
                    return Err(LpError::Unbounded);
                }
            } else if d < -DROP_TOL {
                if hi.is_finite() {
                    (hi, true)
                } else {
                    return Err(LpError::Unbounded);
                }
            } else if lo.is_finite() {
                (lo, false)
            } else if hi.is_finite() {
                (hi, true)
            } else {
                (0.0, false)
            };
            work.fix_col(j, value, at_upper);
            changed = true;
        }
    }
    Ok(changed)
}

/// Free column singletons and doubleton equalities.
fn substitution_pass(work: &mut Work) -> Result<bool, LpError> {
    let mut changed = false;
    // Free column singletons: a continuous column appearing in exactly one
    // live row, which is an equality, with an implied range no tighter
    // than its own bounds — the row defines the column, so both leave.
    for j in 0..work.col_alive.len() {
        if !work.col_alive[j] || work.is_integer(j) {
            continue;
        }
        let hits: Vec<usize> = (0..work.rows.len())
            .filter(|&r| work.rows[r].alive && work.rows[r].coeffs.iter().any(|&(k, _)| k == j))
            .collect();
        if hits.len() != 1 {
            continue;
        }
        let r = hits[0];
        if work.rows[r].op != ConstraintOp::Eq || work.rows[r].coeffs.len() < 2 {
            continue;
        }
        let b = work.rows[r]
            .coeffs
            .iter()
            .find(|&&(k, _)| k == j)
            .map(|&(_, a)| a)
            .unwrap();
        if b.abs() <= 1e-8 {
            continue;
        }
        // Implied range of x_j from the rest of the row must lie inside
        // the column's own bounds, otherwise dropping the bounds loses
        // feasibility information.
        let act = work.activity(r);
        let (cmin, cmax) = {
            let (lo, hi) = (work.lower[j], work.upper[j]);
            if b > 0.0 {
                (b * lo, b * hi)
            } else {
                (b * hi, b * lo)
            }
        };
        let rest_min = act.min_without(cmin);
        let rest_max = act.max_without(cmax);
        if !rest_min.is_finite() || !rest_max.is_finite() {
            continue;
        }
        let rhs = work.rows[r].rhs;
        let (imp_lo, imp_hi) = {
            let v1 = (rhs - rest_max) / b;
            let v2 = (rhs - rest_min) / b;
            (v1.min(v2), v1.max(v2))
        };
        let feas = FEAS_TOL * (1.0 + imp_lo.abs().max(imp_hi.abs()));
        if imp_lo < work.lower[j] - feas || imp_hi > work.upper[j] + feas {
            continue;
        }
        // x_j = (rhs − Σ rest) / b; transfer its cost onto the rest.
        let rest: Vec<(usize, f64)> = work.rows[r]
            .coeffs
            .iter()
            .filter(|&&(k, _)| k != j)
            .copied()
            .collect();
        let cj = work.obj[j];
        work.offset += cj * rhs / b;
        for &(k, a) in &rest {
            work.obj[k] -= cj * a / b;
        }
        work.col_alive[j] = false;
        work.rows[r].alive = false;
        work.stack.push(Reduction::Substituted {
            col: j,
            row: r,
            coeffs: rest,
            rhs,
            cdiv: b,
        });
        changed = true;
    }

    // Doubleton equalities: a·x_k + b·x_y = rhs eliminates the continuous
    // variable with the larger coefficient magnitude (the divisor), with
    // its bounds mapped exactly onto the survivor.
    for r in 0..work.rows.len() {
        if !work.rows[r].alive
            || work.rows[r].op != ConstraintOp::Eq
            || work.rows[r].coeffs.len() != 2
        {
            continue;
        }
        let (j0, a0) = work.rows[r].coeffs[0];
        let (j1, a1) = work.rows[r].coeffs[1];
        if a0.abs() <= 1e-8 || a1.abs() <= 1e-8 {
            continue;
        }
        // Pick the eliminated variable y: continuous, and of the eligible
        // candidates the one with the larger |coefficient| (better
        // numerics as the divisor).
        let c0 = !work.is_integer(j0);
        let c1 = !work.is_integer(j1);
        let (y, b, k, a) = match (c0, c1) {
            (false, false) => continue,
            (true, false) => (j0, a0, j1, a1),
            (false, true) => (j1, a1, j0, a0),
            (true, true) => {
                if a0.abs() >= a1.abs() {
                    (j0, a0, j1, a1)
                } else {
                    (j1, a1, j0, a0)
                }
            }
        };
        let t = a / b;
        if t.abs() > 1e6 {
            continue;
        }
        let rhs_b = work.rows[r].rhs / b;
        // y = rhs_b − t·x_k; map y's bounds onto x_k exactly.
        let (ylo, yhi) = (work.lower[y], work.upper[y]);
        let (mut klo, mut khi) = (f64::NEG_INFINITY, f64::INFINITY);
        if t > 0.0 {
            if ylo.is_finite() {
                khi = (rhs_b - ylo) / t;
            }
            if yhi.is_finite() {
                klo = (rhs_b - yhi) / t;
            }
        } else {
            if ylo.is_finite() {
                klo = (rhs_b - ylo) / t;
            }
            if yhi.is_finite() {
                khi = (rhs_b - yhi) / t;
            }
        }
        work.set_bounds_exact(k, klo, khi)?;
        // Substitute y out of every other live row.
        let rhs = work.rows[r].rhs;
        for r2 in 0..work.rows.len() {
            if r2 == r || !work.rows[r2].alive {
                continue;
            }
            let g = match work.rows[r2].coeffs.iter().position(|&(v, _)| v == y) {
                Some(pos) => {
                    let (_, g) = work.rows[r2].coeffs.swap_remove(pos);
                    g
                }
                None => continue,
            };
            work.rows[r2].rhs -= g * rhs_b;
            match work.rows[r2].coeffs.iter_mut().find(|(v, _)| *v == k) {
                Some((_, ak)) => *ak -= g * t,
                None => work.rows[r2].coeffs.push((k, -g * t)),
            }
            work.rows[r2].coeffs.retain(|&(_, v)| v.abs() > DROP_TOL);
        }
        // Cost transfer: c_y · y = c_y · rhs_b − c_y · t · x_k.
        let cy = work.obj[y];
        work.offset += cy * rhs_b;
        work.obj[k] -= cy * t;
        work.col_alive[y] = false;
        work.rows[r].alive = false;
        work.stack.push(Reduction::Substituted {
            col: y,
            row: r,
            coeffs: vec![(k, a)],
            rhs,
            cdiv: b,
        });
        changed = true;
    }
    Ok(changed)
}

/// `max |a| / min |a|` over a raw constraint list (1.0 when empty).
fn raw_condition(constraints: &[Constraint]) -> f64 {
    let mut amin = f64::INFINITY;
    let mut amax = 0.0f64;
    for c in constraints {
        for &(_, a) in &c.coeffs {
            let v = a.abs();
            if v > DROP_TOL {
                amin = amin.min(v);
                amax = amax.max(v);
            }
        }
    }
    if amax > 0.0 && amin.is_finite() {
        amax / amin
    } else {
        1.0
    }
}

/// Round a positive scale factor to the nearest power of two, clamped to
/// a sane range. Powers of two keep `x_full = s · x_reduced` exact in
/// binary floating point.
fn pow2_round(v: f64) -> f64 {
    if !v.is_finite() || v <= 0.0 {
        return 1.0;
    }
    let e = v.log2().round();
    e.exp2().clamp(1e-8, 1e8)
}

/// Compact the workspace into the reduced problem, apply scaling and
/// assemble the [`Presolved`] result.
fn finish(
    lp: &LinearProgram,
    config: &PresolveConfig,
    work: Work,
    orig_nonzeros: usize,
    n: usize,
    m: usize,
) -> Result<Presolved, LpError> {
    let kept_cols: Vec<usize> = (0..n).filter(|&j| work.col_alive[j]).collect();
    let mut col_map: Vec<Option<usize>> = vec![None; n];
    for (j, &fj) in kept_cols.iter().enumerate() {
        col_map[fj] = Some(j);
    }
    let kept_rows: Vec<usize> = (0..m).filter(|&r| work.rows[r].alive).collect();
    let mut row_map: Vec<Option<usize>> = vec![None; m];
    for (i, &fi) in kept_rows.iter().enumerate() {
        row_map[fi] = Some(i);
    }
    let red_n = kept_cols.len();
    let red_m = kept_rows.len();

    let condition_before = {
        let mut amin = f64::INFINITY;
        let mut amax = 0.0f64;
        for &fi in &kept_rows {
            for &(_, a) in &work.rows[fi].coeffs {
                let v = a.abs();
                if v > DROP_TOL {
                    amin = amin.min(v);
                    amax = amax.max(v);
                }
            }
        }
        if amax > 0.0 && amin.is_finite() {
            amax / amin
        } else {
            1.0
        }
    };

    // Geometric-mean equilibration with power-of-two factors. Integer
    // columns keep s_j = 1 (branching stays exact) and rows touching only
    // integer columns keep r_i = 1 (clique/cover detection in the MILP
    // layer relies on unit coefficients surviving).
    //
    // Only engaged when the coefficient spread exceeds the configured
    // trigger: on an already well-scaled matrix equilibration cannot
    // improve the spread (the factors are powers of two rounded from
    // geometric means ≈ 1) but it still perturbs Devex/DSE reference
    // frameworks enough to change the pivot trajectory — measurably for
    // the worse on the `lp_presolve/presolved_120x80` bench (50 vs 30
    // iterations). The double-precision simplex with its FT pivot-growth
    // gate is comfortable below the default ~1e4 spread; past that,
    // scaling starts buying real stability.
    let mut row_scale = vec![1.0f64; m];
    let mut col_scale = vec![1.0f64; n];
    if config.scale && red_m > 0 && red_n > 0 && condition_before > config.scale_trigger {
        let is_int = |j: usize| work.integer.map(|mask| mask[j]).unwrap_or(false);
        let row_scalable: Vec<bool> = kept_rows
            .iter()
            .map(|&fi| work.rows[fi].coeffs.iter().any(|&(j, _)| !is_int(j)))
            .collect();
        for _ in 0..3 {
            // Row pass over current scaled magnitudes.
            for (i, &fi) in kept_rows.iter().enumerate() {
                if !row_scalable[i] {
                    continue;
                }
                let mut vmin = f64::INFINITY;
                let mut vmax = 0.0f64;
                for &(j, a) in &work.rows[fi].coeffs {
                    let v = a.abs() * row_scale[fi] * col_scale[j];
                    if v > DROP_TOL {
                        vmin = vmin.min(v);
                        vmax = vmax.max(v);
                    }
                }
                if vmax > 0.0 && vmin.is_finite() {
                    let g = (vmin * vmax).sqrt();
                    if g > 0.0 {
                        row_scale[fi] = pow2_round(row_scale[fi] / g);
                    }
                }
            }
            // Column pass.
            for &fj in &kept_cols {
                if is_int(fj) {
                    continue;
                }
                let mut vmin = f64::INFINITY;
                let mut vmax = 0.0f64;
                for &fi in &kept_rows {
                    for &(j, a) in &work.rows[fi].coeffs {
                        if j == fj {
                            let v = a.abs() * row_scale[fi] * col_scale[fj];
                            if v > DROP_TOL {
                                vmin = vmin.min(v);
                                vmax = vmax.max(v);
                            }
                        }
                    }
                }
                if vmax > 0.0 && vmin.is_finite() {
                    let g = (vmin * vmax).sqrt();
                    if g > 0.0 {
                        col_scale[fj] = pow2_round(col_scale[fj] / g);
                    }
                }
            }
        }
    }

    let condition_after = if config.scale {
        let mut amin = f64::INFINITY;
        let mut amax = 0.0f64;
        for &fi in &kept_rows {
            for &(j, a) in &work.rows[fi].coeffs {
                let v = a.abs() * row_scale[fi] * col_scale[j];
                if v > DROP_TOL {
                    amin = amin.min(v);
                    amax = amax.max(v);
                }
            }
        }
        if amax > 0.0 && amin.is_finite() {
            amax / amin
        } else {
            1.0
        }
    } else {
        condition_before
    };

    // Build the reduced problem. With x = s · x' the transformed data is
    // c' = c·s, bounds'/s, a' = r·a·s, rhs' = r·rhs — the objective VALUE
    // is invariant, only the variable space is rescaled.
    let mut reduced = LinearProgram::new(red_n, lp.sense());
    reduced.set_pricing(lp.pricing());
    reduced.set_iteration_limit(lp.iteration_limit());
    reduced.set_time_limit(lp.time_limit());
    for (j, &fj) in kept_cols.iter().enumerate() {
        let s = col_scale[fj];
        reduced.set_objective_coeff(j, work.obj[fj] * s);
        reduced.set_bounds(j, work.lower[fj] / s, work.upper[fj] / s);
    }
    let mut red_nonzeros = 0usize;
    for &fi in &kept_rows {
        let row = &work.rows[fi];
        let r = row_scale[fi];
        let coeffs: Vec<(usize, f64)> = row
            .coeffs
            .iter()
            .map(|&(fj, a)| (col_map[fj].unwrap(), a * r * col_scale[fj]))
            .collect();
        red_nonzeros += coeffs.len();
        reduced.add_constraint(coeffs, row.op, row.rhs * r);
    }

    let identity = work.stack.is_empty()
        && red_n == n
        && red_m == m
        && row_scale.iter().all(|&v| v == 1.0)
        && col_scale.iter().all(|&v| v == 1.0);

    let stats = PresolveStats {
        rows_removed: m - red_m,
        cols_removed: n - red_n,
        nonzeros_removed: orig_nonzeros.saturating_sub(red_nonzeros),
        bound_tightenings: work.tightenings,
        condition_before,
        condition_after,
    };

    Ok(Presolved {
        lp: reduced,
        postsolve: Postsolve {
            orig_num_vars: n,
            orig_num_rows: m,
            objective_offset: work.offset,
            kept_cols,
            col_map,
            kept_rows,
            row_map,
            col_scale,
            row_scale,
            stack: work.stack,
            identity,
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintOp, LinearProgram, Sense};

    fn assert_close(a: f64, b: f64, label: &str) {
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
            "{label}: {a} vs {b}"
        );
    }

    /// A small mixed model exercising several reductions at once.
    fn sample_lp() -> LinearProgram {
        let mut lp = LinearProgram::new(5, Sense::Minimize);
        // x0 fixed, x1..x2 genuine, x3 via doubleton, x4 via singleton row.
        lp.set_objective_coeff(0, 3.0);
        lp.set_objective_coeff(1, 1.0);
        lp.set_objective_coeff(2, 2.0);
        lp.set_objective_coeff(3, 1.5);
        lp.set_objective_coeff(4, 0.5);
        lp.set_bounds(0, 2.0, 2.0);
        lp.set_bounds(1, 0.0, 10.0);
        lp.set_bounds(2, 0.0, 10.0);
        lp.set_bounds(3, 0.0, 20.0);
        lp.set_bounds(4, 0.0, 10.0);
        // Singleton row: x4 >= 1.
        lp.add_constraint(vec![(4, 1.0)], ConstraintOp::Ge, 1.0);
        // Doubleton equality: x3 = 4 - x1.
        lp.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintOp::Eq, 4.0);
        // Real coupling row including the fixed column.
        lp.add_constraint(
            vec![(0, 1.0), (1, 2.0), (2, 1.0), (4, 1.0)],
            ConstraintOp::Ge,
            6.0,
        );
        // Redundant row (always satisfiable within bounds).
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], ConstraintOp::Le, 100.0);
        lp
    }

    #[test]
    fn disabled_config_is_identity() {
        let lp = sample_lp();
        let pre = lp.presolve(&PresolveConfig::off(), None).unwrap();
        assert!(pre.postsolve.is_identity());
        assert_eq!(pre.lp.num_vars(), lp.num_vars());
        assert_eq!(pre.lp.num_constraints(), lp.num_constraints());
        assert_eq!(pre.stats.rows_removed, 0);
        let sol = lp.solve().unwrap();
        let restored = pre.postsolve.restore_solution(&sol);
        assert_close(restored.objective, sol.objective, "identity objective");
        assert_eq!(restored.values, sol.values);
    }

    #[test]
    fn sample_model_round_trips() {
        let lp = sample_lp();
        let full = lp.solve().unwrap();
        let pre = lp.presolve(&PresolveConfig::default(), None).unwrap();
        assert!(pre.stats.rows_removed >= 2, "stats: {:?}", pre.stats);
        assert!(pre.stats.cols_removed >= 2, "stats: {:?}", pre.stats);
        let red = pre.lp.solve().unwrap();
        let restored = pre.postsolve.restore_solution(&red);
        assert_close(restored.objective, full.objective, "objective");
        // The restored point must satisfy every original constraint.
        for (i, c) in lp.constraints().iter().enumerate() {
            let lhs: f64 = c.coeffs.iter().map(|&(j, a)| a * restored.values[j]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + 1e-6,
                ConstraintOp::Ge => lhs >= c.rhs - 1e-6,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= 1e-6,
            };
            assert!(ok, "row {i} violated: {lhs} vs {}", c.rhs);
        }
        for j in 0..lp.num_vars() {
            let (lo, hi) = lp.bounds(j);
            assert!(
                restored.values[j] >= lo - 1e-6 && restored.values[j] <= hi + 1e-6,
                "var {j} out of bounds"
            );
        }
    }

    #[test]
    fn basis_round_trip_resolves_without_work() {
        let lp = sample_lp();
        let pre = lp.presolve(&PresolveConfig::default(), None).unwrap();
        let (red_sol, red_basis) = pre.lp.solve_warm(None).unwrap();
        let full_basis = pre.postsolve.basis_to_full(&red_basis);
        assert_eq!(full_basis.num_structural(), lp.num_vars());
        assert_eq!(full_basis.num_rows(), lp.num_constraints());
        // Warm-starting the FULL model from the lifted basis reaches the
        // same objective.
        let (full_sol, _) = lp.solve_warm(Some(&full_basis)).unwrap();
        assert_close(
            full_sol.objective,
            red_sol.objective + pre.postsolve.objective_offset(),
            "warm full objective",
        );
        // And mapping back down gives a basis the reduced model accepts.
        let back = pre.postsolve.basis_to_reduced(&full_basis).unwrap();
        let (again, _) = pre.lp.solve_warm(Some(&back)).unwrap();
        assert_close(again.objective, red_sol.objective, "reduced warm objective");
    }

    #[test]
    fn infeasible_bounds_detected() {
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_bounds(0, 0.0, 1.0);
        lp.set_bounds(1, 0.0, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 5.0);
        match lp.presolve(&PresolveConfig::default(), None) {
            Err(LpError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn all_fixed_model_reduces_to_nothing() {
        let mut lp = LinearProgram::new(3, Sense::Minimize);
        for j in 0..3 {
            lp.set_objective_coeff(j, (j + 1) as f64);
            lp.set_bounds(j, 1.0, 1.0);
        }
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Le, 5.0);
        let pre = lp.presolve(&PresolveConfig::default(), None).unwrap();
        assert_eq!(pre.lp.num_vars(), 0);
        assert_eq!(pre.lp.num_constraints(), 0);
        let restored = pre.postsolve.restore_values(&[]);
        assert_eq!(restored, vec![1.0, 1.0, 1.0]);
        assert_close(pre.postsolve.objective_offset(), 6.0, "offset");
    }

    #[test]
    fn integer_bounds_are_rounded() {
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 1.0);
        lp.set_bounds(0, 0.3, 2.7);
        lp.set_bounds(1, 0.0, 5.0);
        // Keep x0 occupied by a non-redundant row so it survives as a
        // live reduced column.
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        let pre = lp
            .presolve(&PresolveConfig::default(), Some(&[true, false]))
            .unwrap();
        assert!(pre.stats.bound_tightenings >= 1);
        let j0 = pre
            .postsolve
            .kept_columns()
            .iter()
            .position(|&fj| fj == 0)
            .expect("x0 still live");
        // Rounded inwards to [1, 2] (integer columns keep unit scale).
        let (lo, hi) = pre.lp.bounds(j0);
        assert_eq!((lo, hi), (1.0, 2.0));
    }

    #[test]
    fn scaling_preserves_objective_value() {
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 1e4);
        lp.set_bounds(0, 0.0, 1e6);
        lp.set_bounds(1, 0.0, 10.0);
        // Wild coefficient spread, as in big-M rows.
        lp.add_constraint(vec![(0, 1e-3), (1, 1e5)], ConstraintOp::Ge, 50.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 2.0);
        let full = lp.solve().unwrap();
        let pre = lp.presolve(&PresolveConfig::default(), None).unwrap();
        assert!(
            pre.stats.condition_after <= pre.stats.condition_before,
            "scaling should not worsen conditioning: {:?}",
            pre.stats
        );
        let red = pre.lp.solve().unwrap();
        let restored = pre.postsolve.restore_solution(&red);
        assert_close(restored.objective, full.objective, "scaled objective");
    }

    #[test]
    fn unbounded_empty_column_detected() {
        let mut lp = LinearProgram::new(1, Sense::Maximize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_bounds(0, 0.0, f64::INFINITY);
        match lp.presolve(&PresolveConfig::default(), None) {
            Err(LpError::Unbounded) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn free_variable_survives() {
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 1.0);
        lp.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        lp.set_bounds(1, 0.0, 10.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Le, 8.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, -5.0);
        let full = lp.solve().unwrap();
        let pre = lp.presolve(&PresolveConfig::default(), None).unwrap();
        let red = pre.lp.solve().unwrap();
        let restored = pre.postsolve.restore_solution(&red);
        assert_close(restored.objective, full.objective, "free var objective");
    }
}
