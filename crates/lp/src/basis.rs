//! Basis factorisation for the revised simplex.
//!
//! The basis matrix `B` (one column per basic variable) is factorised as
//! `B = P^T L U` by sparse Gaussian elimination with partial pivoting; the
//! factors are stored column-wise as explicit sparse lists. Pivots replace
//! one basis column at a time, which is absorbed with **product-form (eta)
//! updates**: instead of refactorising, the update `B' = B·E_r(w)` with
//! `w = B⁻¹ a_q` is appended to an eta file applied after (FTRAN) or before
//! (BTRAN) the LU solves. The factorisation is rebuilt from scratch
//! periodically — when the eta file grows past a threshold or a pivot is
//! numerically unacceptable — which bounds both fill-in and error
//! accumulation (the classical Bartels–Golub motivation; see `DESIGN.md`
//! for the deviation note).

use crate::sparse::ScatterVec;

/// Smallest pivot magnitude accepted during factorisation.
const PIVOT_TOL: f64 = 1e-10;
/// Smallest eta pivot accepted during an update; below this the caller must
/// refactorise.
const ETA_PIVOT_TOL: f64 = 1e-8;
/// Entries below this magnitude are dropped from stored factor columns.
const DROP_TOL: f64 = 1e-13;

/// One product-form update: the basis column at elimination position
/// `pos` was replaced; `w = B⁻¹ a_q` is stored split into its pivot element
/// and the remaining non-zeros.
#[derive(Debug, Clone)]
struct Eta {
    pos: usize,
    pivot: f64,
    /// `(position, w_i)` for `i != pos`.
    entries: Vec<(usize, f64)>,
}

/// LU factorisation of a basis with an eta-file of pending updates.
#[derive(Debug, Clone)]
pub(crate) struct Factorization {
    m: usize,
    /// `lower[k]`: multipliers `(row, l)` of elimination step `k`
    /// (rows still unpivoted at step `k`).
    lower: Vec<Vec<(usize, f64)>>,
    /// `upper[k]`: above-diagonal entries `(position, u)` of column `k` of
    /// `U` (positions `< k`).
    upper: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per elimination position.
    upper_diag: Vec<f64>,
    /// Row chosen as pivot of elimination step `k`.
    pivot_rows: Vec<usize>,
    etas: Vec<Eta>,
    /// Refactorise once the eta file reaches this many updates.
    max_etas: usize,
}

/// Error returned when the candidate basis is numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SingularBasis;

impl Factorization {
    /// Factorises the basis given as `m` sparse columns (`(row, value)`
    /// lists).
    pub fn factorize(
        m: usize,
        columns: &[Vec<(usize, f64)>],
    ) -> Result<Factorization, SingularBasis> {
        debug_assert_eq!(columns.len(), m);
        let mut f = Factorization {
            m,
            lower: Vec::with_capacity(m),
            upper: Vec::with_capacity(m),
            upper_diag: Vec::with_capacity(m),
            pivot_rows: Vec::with_capacity(m),
            etas: Vec::new(),
            max_etas: (m / 2).clamp(16, 64),
        };
        let mut pivoted = vec![false; m];
        let mut work = ScatterVec::new(m);
        for column in columns.iter() {
            let k = f.pivot_rows.len();
            for &(r, v) in column {
                work.add(r, v);
            }
            // Apply the previous elimination steps in order.
            let mut upper_col: Vec<(usize, f64)> = Vec::new();
            for j in 0..k {
                let u = work.get(f.pivot_rows[j]);
                if u.abs() > DROP_TOL {
                    upper_col.push((j, u));
                    for &(row, l) in &f.lower[j] {
                        work.add(row, -l * u);
                    }
                }
            }
            // Partial pivoting over the rows not yet chosen.
            let mut pivot_row = usize::MAX;
            let mut pivot_val = 0.0f64;
            for &r in work.touched() {
                if !pivoted[r] && work.get(r).abs() > pivot_val.abs() {
                    pivot_row = r;
                    pivot_val = work.get(r);
                }
            }
            if pivot_row == usize::MAX || pivot_val.abs() < PIVOT_TOL {
                return Err(SingularBasis);
            }
            pivoted[pivot_row] = true;
            let mut lower_col: Vec<(usize, f64)> = Vec::new();
            for &r in work.touched() {
                if !pivoted[r] {
                    let l = work.get(r) / pivot_val;
                    if l.abs() > DROP_TOL {
                        lower_col.push((r, l));
                    }
                }
            }
            work.clear();
            f.pivot_rows.push(pivot_row);
            f.upper_diag.push(pivot_val);
            f.upper.push(upper_col);
            f.lower.push(lower_col);
        }
        Ok(f)
    }

    /// Basis dimension.
    #[cfg(test)]
    pub fn dim(&self) -> usize {
        self.m
    }

    /// `true` when the eta file is due for a refactorisation.
    #[inline]
    pub fn needs_refactorization(&self) -> bool {
        self.etas.len() >= self.max_etas
    }

    /// `true` while the eta file is short enough that *reusing* this
    /// factorisation (warm-start cache) still beats refactorising from
    /// scratch. Every FTRAN/BTRAN replays the whole eta file, so a chain
    /// inherited across many warm solves costs time — and, worse, each
    /// replayed eta compounds rounding error, which on the ill-conditioned
    /// big-M layout models measurably degrades the returned vertices (the
    /// flow's length-matching suffered at a half-`max_etas` threshold).
    /// A quarter of the refactorisation threshold keeps the speed win while
    /// staying numerically indistinguishable from fresh factors.
    #[inline]
    pub fn worth_caching(&self) -> bool {
        self.etas.len() * 4 < self.max_etas
    }

    /// Number of eta updates applied since the last refactorisation.
    #[cfg(test)]
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// FTRAN: solves `B x = b`. `b` is indexed by *row*, the result by
    /// *elimination position* (i.e. `x[k]` belongs to the basic variable in
    /// position `k`). Works in place on a dense buffer of length `m`.
    pub fn ftran(&self, b: &mut [f64]) {
        debug_assert_eq!(b.len(), self.m);
        // L-solve: replay the elimination steps on b (row space).
        for j in 0..self.m {
            let y = b[self.pivot_rows[j]];
            if y != 0.0 {
                for &(row, l) in &self.lower[j] {
                    b[row] -= l * y;
                }
            }
        }
        // Permute into position space: y_k lives at pivot_rows[k].
        let mut x = vec![0.0; self.m];
        for k in 0..self.m {
            x[k] = b[self.pivot_rows[k]];
        }
        // U back-substitution (column oriented).
        for k in (0..self.m).rev() {
            let xk = x[k] / self.upper_diag[k];
            x[k] = xk;
            if xk != 0.0 {
                for &(i, u) in &self.upper[k] {
                    x[i] -= u * xk;
                }
            }
        }
        // Eta file: x := E⁻¹ x, oldest first.
        for eta in &self.etas {
            let xr = x[eta.pos] / eta.pivot;
            x[eta.pos] = xr;
            if xr != 0.0 {
                for &(i, w) in &eta.entries {
                    x[i] -= w * xr;
                }
            }
        }
        b.copy_from_slice(&x);
    }

    /// BTRAN: solves `Bᵀ y = c`. `c` is indexed by *elimination position*
    /// (cost of the basic variable in position `k`), the result by *row*
    /// (dual value per constraint row). Works in place.
    pub fn btran(&self, c: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Eta file transposed, newest first: c := E⁻ᵀ c.
        for eta in self.etas.iter().rev() {
            let mut cr = c[eta.pos];
            for &(i, w) in &eta.entries {
                cr -= w * c[i];
            }
            c[eta.pos] = cr / eta.pivot;
        }
        // Uᵀ forward solve (Uᵀ is lower triangular in position space).
        let mut w = vec![0.0; self.m];
        for k in 0..self.m {
            let mut v = c[k];
            for &(i, u) in &self.upper[k] {
                v -= u * w[i];
            }
            w[k] = v / self.upper_diag[k];
        }
        // Scatter to row space and apply the transposed elimination steps in
        // reverse order.
        let mut y = vec![0.0; self.m];
        for k in 0..self.m {
            y[self.pivot_rows[k]] = w[k];
        }
        for j in (0..self.m).rev() {
            let mut acc = 0.0;
            for &(row, l) in &self.lower[j] {
                acc += l * y[row];
            }
            y[self.pivot_rows[j]] -= acc;
        }
        c.copy_from_slice(&y);
    }

    /// Absorbs a basis change at elimination position `pos`, where
    /// `w = B⁻¹ a_entering` (position space, as produced by
    /// [`Factorization::ftran`]). Returns `false` when the pivot element is
    /// too small — the caller must refactorise instead.
    pub fn update(&mut self, pos: usize, w: &[f64]) -> bool {
        let pivot = w[pos];
        if pivot.abs() < ETA_PIVOT_TOL {
            return false;
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != pos && v.abs() > DROP_TOL)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            pos,
            pivot,
            entries,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_columns(cols: &[&[f64]]) -> Vec<Vec<(usize, f64)>> {
        cols.iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(r, &v)| (r, v))
                    .collect()
            })
            .collect()
    }

    fn mat_vec(cols: &[&[f64]], x: &[f64]) -> Vec<f64> {
        let m = cols[0].len();
        let mut out = vec![0.0; m];
        for (k, col) in cols.iter().enumerate() {
            for r in 0..m {
                out[r] += col[r] * x[k];
            }
        }
        out
    }

    #[test]
    fn ftran_btran_solve_small_system() {
        // B columns (3x3), deliberately needing a row swap.
        let cols: Vec<&[f64]> = vec![&[0.0, 2.0, 1.0], &[1.0, 0.0, 1.0], &[1.0, 1.0, 0.0]];
        let f = Factorization::factorize(3, &dense_columns(&cols)).expect("nonsingular");
        assert_eq!(f.dim(), 3);

        let mut b = vec![3.0, 5.0, 4.0];
        f.ftran(&mut b);
        // Check B x = [3,5,4].
        let bx = mat_vec(&cols, &b);
        for (got, want) in bx.iter().zip([3.0, 5.0, 4.0]) {
            assert!((got - want).abs() < 1e-9, "{bx:?}");
        }

        let mut c = vec![1.0, -2.0, 0.5];
        f.btran(&mut c);
        // Check Bᵀ y = c, i.e. for every column k: col_k · y = c_k.
        for (k, col) in cols.iter().enumerate() {
            let dot: f64 = col.iter().zip(&c).map(|(a, y)| a * y).sum();
            let want = [1.0, -2.0, 0.5][k];
            assert!((dot - want).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let cols: Vec<&[f64]> = vec![&[1.0, 2.0], &[2.0, 4.0]];
        assert_eq!(
            Factorization::factorize(2, &dense_columns(&cols)).unwrap_err(),
            SingularBasis
        );
    }

    #[test]
    fn eta_update_matches_refactorization() {
        let cols: Vec<&[f64]> = vec![&[2.0, 0.0, 1.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]];
        let mut f = Factorization::factorize(3, &dense_columns(&cols)).expect("nonsingular");

        // Replace the column in position 1 with a_q = [1, 3, 0].
        let a_q = [1.0, 3.0, 0.0];
        let mut w = a_q.to_vec();
        f.ftran(&mut w);
        assert!(f.update(1, &w));
        assert_eq!(f.eta_count(), 1);

        let new_cols: Vec<&[f64]> = vec![&[2.0, 0.0, 1.0], &a_q, &[1.0, 1.0, 0.0]];
        let g = Factorization::factorize(3, &dense_columns(&new_cols)).expect("nonsingular");

        let rhs = [4.0, -1.0, 2.5];
        let mut x1 = rhs.to_vec();
        f.ftran(&mut x1);
        let mut x2 = rhs.to_vec();
        g.ftran(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-9, "{x1:?} vs {x2:?}");
        }

        let cost = [1.0, 1.0, -1.0];
        let mut y1 = cost.to_vec();
        f.btran(&mut y1);
        let mut y2 = cost.to_vec();
        g.btran(&mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-9, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn tiny_eta_pivot_is_refused() {
        let cols: Vec<&[f64]> = vec![&[1.0, 0.0], &[0.0, 1.0]];
        let mut f = Factorization::factorize(2, &dense_columns(&cols)).expect("nonsingular");
        // w with a ~zero pivot element in position 0.
        assert!(!f.update(0, &[1e-12, 1.0]));
        assert_eq!(f.eta_count(), 0);
    }
}
