//! Basis factorisation for the revised simplex.
//!
//! The basis matrix `B` (one column per basic variable) is factorised as
//! `B = P^T L U` by sparse Gaussian elimination with partial pivoting; the
//! factors are stored column-wise as explicit sparse lists, with `U`
//! additionally mirrored row-wise so rows can be eliminated cheaply.
//!
//! Simplex pivots replace one basis column at a time and are absorbed with
//! **Forrest–Tomlin updates**: the replaced column of `U` is overwritten by
//! the spike `v = L⁻¹·a_q`, the column's elimination position is cyclically
//! rotated to the end of the pivot order, and the now sub-diagonal remnants
//! of its old row are eliminated with a single **row eta** (a sparse row
//! transformation appended to the `L` side). Unlike the product-form eta
//! file this repo used before, the transformed `U` stays genuinely upper
//! triangular: each update costs one short row elimination instead of a
//! whole `B⁻¹a_q` column replayed by every subsequent FTRAN/BTRAN, so the
//! eta file grows far slower and the factorisation stays reusable across
//! many more warm-started solves. A stability gate (tiny or collapsing
//! transformed diagonal) refuses the update, in which case the caller must
//! refactorise; refactorisation also fires periodically to bound fill-in
//! and rounding-error accumulation.

use crate::sparse::ScatterVec;

/// Smallest pivot magnitude accepted during factorisation.
const PIVOT_TOL: f64 = 1e-10;
/// Smallest transformed diagonal accepted by a Forrest–Tomlin update;
/// below this the caller must refactorise.
const ETA_PIVOT_TOL: f64 = 1e-8;
/// Entries below this magnitude are dropped from stored factor columns.
const DROP_TOL: f64 = 1e-13;
/// A Forrest–Tomlin update whose transformed diagonal is smaller than
/// `STABILITY_RATIO * max|spike|` is refused as numerically unstable
/// (catastrophic cancellation in the row elimination).
const STABILITY_RATIO: f64 = 1e-9;
/// A Forrest–Tomlin update whose row elimination produces a multiplier
/// larger than this is refused: large multipliers amplify rounding error
/// through every subsequent solve (the classical growth gate).
const MULT_GROWTH_LIMIT: f64 = 1e7;

/// One Forrest–Tomlin row transformation: after the `L` solve,
/// `b[row] -= Σ mult·b[pos]` over `entries = (pos, mult)` (position space).
#[derive(Debug, Clone)]
struct RowEta {
    row: usize,
    entries: Vec<(usize, f64)>,
}

/// LU factorisation of a basis with pending Forrest–Tomlin updates.
#[derive(Debug, Clone)]
pub struct Factorization {
    m: usize,
    /// Multipliers of the elimination steps, flattened: step `k`'s
    /// `(row, l)` entries live at `lower_data[lower_ptr[k]..lower_ptr[k+1]]`
    /// (rows still unpivoted at step `k`). Flat storage makes cloning a
    /// cached factorisation — every warm branch-and-bound node does one —
    /// two memcpys instead of `m` small-vector clones.
    lower_ptr: Vec<usize>,
    lower_data: Vec<(usize, f64)>,
    /// Row chosen as pivot of elimination step `k`.
    pivot_rows: Vec<usize>,
    /// Off-diagonal entries `(row position, u)` of `U` column `p`
    /// (positions earlier than `p` in [`Factorization::pos_order`]).
    ucols: Vec<Vec<(usize, f64)>>,
    /// Row-wise mirror of `ucols`: off-diagonal entries
    /// `(column position, u)` of `U` row `p`.
    urows: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per elimination position.
    diag: Vec<f64>,
    /// Triangular elimination order of the positions: `U` is upper
    /// triangular with respect to this order (identity after a fresh
    /// factorisation; Forrest–Tomlin updates rotate positions to the end).
    pos_order: Vec<usize>,
    /// Inverse of `pos_order`.
    order_index: Vec<usize>,
    /// Forrest–Tomlin row transformations, applied oldest-first after the
    /// `L` solve in FTRAN (transposed, newest-first before it in BTRAN).
    etas: Vec<RowEta>,
    /// Refactorise once the eta file reaches this many updates.
    max_etas: usize,
    /// Off-diagonal non-zeros of `U` at factorisation time (fill guard).
    base_fill: usize,
    /// Current off-diagonal non-zeros of `U`.
    fill: usize,
    /// Reusable dense scratch (FTRAN result / BTRAN position pass) — the
    /// solves run once per pivot, so per-call allocation was measurable.
    xwork: Vec<f64>,
    /// The intermediate `v = L⁻¹·b` of the most recent [`Factorization::ftran`]
    /// (after the row etas, before the `U` back-substitution) — exactly the
    /// Forrest–Tomlin spike of that column, captured so
    /// [`Factorization::update`] does not have to recompute `U·w`.
    last_spike: Vec<f64>,
    /// Reusable sparse accumulator for the update's row elimination.
    scatter: ScatterVec,
}

/// Error returned when the candidate basis is numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularBasis;

impl Factorization {
    /// Factorises the basis given as `m` sparse columns (`(row, value)`
    /// lists).
    pub fn factorize(
        m: usize,
        columns: &[Vec<(usize, f64)>],
    ) -> Result<Factorization, SingularBasis> {
        debug_assert_eq!(columns.len(), m);
        let mut f = Factorization {
            m,
            lower_ptr: vec![0],
            lower_data: Vec::new(),
            pivot_rows: Vec::with_capacity(m),
            ucols: Vec::with_capacity(m),
            urows: vec![Vec::new(); m],
            diag: Vec::with_capacity(m),
            pos_order: (0..m).collect(),
            order_index: (0..m).collect(),
            // Forrest–Tomlin etas are single sparse rows (not whole spike
            // columns) — cheaper to replay and numerically tamer than the
            // old product-form spikes — but the big-M layout bases degrade
            // fast enough that the chain cap stays at the product-form
            // cadence; the win is spent on the warm-start cache instead
            // (`worth_caching` admits chains twice as long as before).
            max_etas: (m / 2).clamp(16, 64),
            etas: Vec::new(),
            base_fill: 0,
            fill: 0,
            xwork: vec![0.0; m],
            last_spike: vec![0.0; m],
            scatter: ScatterVec::new(m),
        };
        let mut pivoted = vec![false; m];
        let mut work = ScatterVec::new(m);
        for column in columns.iter() {
            let k = f.pivot_rows.len();
            for &(r, v) in column {
                work.add(r, v);
            }
            // Apply the previous elimination steps in order.
            let mut upper_col: Vec<(usize, f64)> = Vec::new();
            for j in 0..k {
                let u = work.get(f.pivot_rows[j]);
                if u.abs() > DROP_TOL {
                    upper_col.push((j, u));
                    for &(row, l) in &f.lower_data[f.lower_ptr[j]..f.lower_ptr[j + 1]] {
                        work.add(row, -l * u);
                    }
                }
            }
            // Partial pivoting over the rows not yet chosen.
            let mut pivot_row = usize::MAX;
            let mut pivot_val = 0.0f64;
            for &r in work.touched() {
                if !pivoted[r] && work.get(r).abs() > pivot_val.abs() {
                    pivot_row = r;
                    pivot_val = work.get(r);
                }
            }
            if pivot_row == usize::MAX || pivot_val.abs() < PIVOT_TOL {
                return Err(SingularBasis);
            }
            pivoted[pivot_row] = true;
            for &r in work.touched() {
                if !pivoted[r] {
                    let l = work.get(r) / pivot_val;
                    if l.abs() > DROP_TOL {
                        f.lower_data.push((r, l));
                    }
                }
            }
            f.lower_ptr.push(f.lower_data.len());
            work.clear();
            for &(i, u) in &upper_col {
                f.urows[i].push((k, u));
            }
            f.fill += upper_col.len();
            f.pivot_rows.push(pivot_row);
            f.diag.push(pivot_val);
            f.ucols.push(upper_col);
        }
        f.base_fill = f.fill;
        Ok(f)
    }

    /// Basis dimension.
    #[cfg(test)]
    pub fn dim(&self) -> usize {
        self.m
    }

    /// `true` when the factorisation is due for a rebuild: the eta file
    /// reached its cap, or Forrest–Tomlin spikes have more than tripled the
    /// `U` fill (dense spikes make every solve walk long columns).
    #[inline]
    pub fn needs_refactorization(&self) -> bool {
        self.etas.len() >= self.max_etas || self.fill > 3 * self.base_fill + 8 * self.m
    }

    /// `true` while the eta file is short enough that *reusing* this
    /// factorisation (warm-start cache) still beats refactorising from
    /// scratch. Forrest–Tomlin row etas are cheaper to replay than the old
    /// product-form spike columns, but the quarter-of-the-cap ceiling is
    /// kept: on the ill-conditioned big-M layout models, factors inherited
    /// with longer chains measurably degraded the returned vertices —
    /// relaxing this gate to half the cap produced tolerance-infeasible
    /// optima whose node LPs cycled to the iteration limit (see the
    /// phase-flap guard in `revised.rs`).
    #[inline]
    pub fn worth_caching(&self) -> bool {
        self.etas.len() * 4 < self.max_etas
    }

    /// Number of Forrest–Tomlin updates applied since the last
    /// refactorisation.
    #[cfg(test)]
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// FTRAN: solves `B x = b`. `b` is indexed by *row*, the result by
    /// *elimination position* (i.e. `x[k]` belongs to the basic variable in
    /// position `k`). Works in place on a dense buffer of length `m`.
    ///
    /// Captures the Forrest–Tomlin spike for a following
    /// [`Factorization::update`] — use this for *entering columns* and
    /// [`Factorization::ftran_aux`] for every other right-hand side
    /// (basic-value recomputation, batched bound-flip columns), so an
    /// auxiliary solve between the entering column's FTRAN and the update
    /// cannot corrupt the captured spike.
    pub fn ftran(&mut self, b: &mut [f64]) {
        self.ftran_impl(b, true);
    }

    /// FTRAN of an auxiliary right-hand side: identical to
    /// [`Factorization::ftran`] but leaves the captured update spike
    /// untouched (and skips the capture copy).
    pub fn ftran_aux(&mut self, b: &mut [f64]) {
        self.ftran_impl(b, false);
    }

    fn ftran_impl(&mut self, b: &mut [f64], capture_spike: bool) {
        debug_assert_eq!(b.len(), self.m);
        // L-solve: replay the elimination steps on b (row space).
        for j in 0..self.m {
            let y = b[self.pivot_rows[j]];
            if y != 0.0 {
                for &(row, l) in &self.lower_data[self.lower_ptr[j]..self.lower_ptr[j + 1]] {
                    b[row] -= l * y;
                }
            }
        }
        // Permute into position space: y_k lives at pivot_rows[k].
        let mut x = std::mem::take(&mut self.xwork);
        for k in 0..self.m {
            x[k] = b[self.pivot_rows[k]];
        }
        // Forrest–Tomlin row transformations, oldest first.
        for eta in &self.etas {
            let mut acc = x[eta.row];
            for &(pos, mult) in &eta.entries {
                acc -= mult * x[pos];
            }
            x[eta.row] = acc;
        }
        // Capture the spike `v = L⁻¹·b` for a following update().
        if capture_spike {
            self.last_spike.copy_from_slice(&x);
        }
        // U back-substitution (column oriented) along the pivot order.
        for k in (0..self.m).rev() {
            let p = self.pos_order[k];
            let xp = x[p] / self.diag[p];
            x[p] = xp;
            if xp != 0.0 {
                for &(i, u) in self.ucols[p].iter() {
                    x[i] -= u * xp;
                }
            }
        }
        b.copy_from_slice(&x);
        self.xwork = x;
    }

    /// BTRAN: solves `Bᵀ y = c`. `c` is indexed by *elimination position*
    /// (cost of the basic variable in position `k`), the result by *row*
    /// (dual value per constraint row). Works in place.
    pub fn btran(&mut self, c: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Uᵀ forward solve (lower triangular along the pivot order).
        let mut w = std::mem::take(&mut self.xwork);
        for k in 0..self.m {
            let p = self.pos_order[k];
            let mut v = c[p];
            for &(i, u) in self.ucols[p].iter() {
                v -= u * w[i];
            }
            w[p] = v / self.diag[p];
        }
        self.btran_tail(&mut w, c);
        self.xwork = w;
    }

    /// BTRAN of a unit vector: solves `Bᵀ y = e_pos` (the pivot-row solve
    /// of pricing updates and cut separation). Exploits that `e_pos` is
    /// zero at every elimination position ordered before `pos`, so the
    /// `Uᵀ` forward solve skips the leading prefix — on average half the
    /// triangular work of a generic [`Factorization::btran`].
    pub fn btran_unit(&mut self, pos: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.m);
        let mut w = std::mem::take(&mut self.xwork);
        let start = self.order_index[pos];
        for k in 0..start {
            w[self.pos_order[k]] = 0.0;
        }
        for k in start..self.m {
            let p = self.pos_order[k];
            let mut v = if p == pos { 1.0 } else { 0.0 };
            for &(i, u) in self.ucols[p].iter() {
                v -= u * w[i];
            }
            w[p] = v / self.diag[p];
        }
        self.btran_tail(&mut w, out);
        self.xwork = w;
    }

    /// Shared BTRAN tail: the transposed eta file, the scatter to row
    /// space and the transposed elimination steps. `w` is the `Uᵀ` solve
    /// result (position space); the answer lands in `out` (row space).
    ///
    /// Works directly in the caller's `out` buffer: `pivot_rows` is a
    /// permutation, so the scatter overwrites every entry and no
    /// intermediate row-space scratch (or final copy) is needed. The
    /// elimination loop skips steps without multipliers outright —
    /// on the sparse layout bases most steps are empty — and steps whose
    /// accumulated correction is exactly zero; both subtractions were
    /// `y -= 0.0` no-ops, so the solve is bit-identical to the plain loop.
    fn btran_tail(&mut self, w: &mut [f64], out: &mut [f64]) {
        // Forrest–Tomlin transformations transposed, newest first.
        for eta in self.etas.iter().rev() {
            let wr = w[eta.row];
            if wr != 0.0 {
                for &(pos, mult) in &eta.entries {
                    w[pos] -= mult * wr;
                }
            }
        }
        // Scatter to row space and apply the transposed elimination steps in
        // reverse order.
        for k in 0..self.m {
            out[self.pivot_rows[k]] = w[k];
        }
        for j in (0..self.m).rev() {
            let lo = self.lower_ptr[j];
            let hi = self.lower_ptr[j + 1];
            if lo == hi {
                continue;
            }
            let mut acc = 0.0;
            for &(row, l) in &self.lower_data[lo..hi] {
                acc += l * out[row];
            }
            if acc != 0.0 {
                out[self.pivot_rows[j]] -= acc;
            }
        }
    }

    /// Absorbs a basis change at elimination position `pos` with a
    /// Forrest–Tomlin update. **Contract:** the entering column must have
    /// been the argument of the most recent [`Factorization::ftran`] call
    /// (auxiliary [`Factorization::ftran_aux`] solves do not count) —
    /// simplex always FTRANs the entering column for the ratio test, and
    /// that solve's intermediate `v = L⁻¹·a_entering` (captured before the
    /// `U` back-substitution) *is* the Forrest–Tomlin spike, so it is
    /// reused here instead of being recomputed as `U·w`. Returns `false`
    /// when the transformed diagonal is numerically unacceptable — the
    /// caller must refactorise instead.
    ///
    /// The spike is written into column `pos`, the position is rotated to
    /// the end of the pivot order, and the stale row remnants are
    /// eliminated into one row eta.
    pub fn update(&mut self, pos: usize, w: &[f64]) -> bool {
        debug_assert_eq!(w.len(), self.m);
        // Spike v = L⁻¹·a_entering, captured by the entering column's ftran.
        let v = std::mem::take(&mut self.last_spike);
        // Debug-only contract check: the captured spike must actually be
        // `U·w` — i.e. the most recent ftran was the entering column's. An
        // ftran slipped in between (a compute_x_basic, say) would silently
        // corrupt the factors in release; in debug tests it fails here.
        #[cfg(debug_assertions)]
        {
            // Reconstruct U·w alongside the absolute magnitude of the
            // summed terms: on ill-conditioned bases (tiny transformed
            // diagonals on the big-M layout models) `w` can be ~1e13 while
            // `v` stays ~1e2, so rounding in the reconstruction alone
            // reaches `ε·Σ|u·w|` — the tolerance must scale with the
            // cancellation actually incurred, or the check false-fires on
            // pivot sequences that merely steer into ill-conditioned
            // corners. A real contract break (the last capturing ftran was
            // not the entering column) still trips it: the difference is
            // then of the order of `v` itself, far above the rounding term.
            let mut check = vec![0.0; self.m];
            let mut check_abs = vec![0.0; self.m];
            for (c, &wc) in w.iter().enumerate() {
                if wc != 0.0 {
                    check[c] += self.diag[c] * wc;
                    check_abs[c] += (self.diag[c] * wc).abs();
                    for &(i, u) in &self.ucols[c] {
                        check[i] += u * wc;
                        check_abs[i] += (u * wc).abs();
                    }
                }
            }
            let scale = 1e-6 * (1.0 + v.iter().fold(0.0f64, |a, &x| a.max(x.abs())));
            debug_assert!(
                v.iter()
                    .zip(&check)
                    .zip(&check_abs)
                    .all(|((a, b), abs)| (a - b).abs() <= scale + 1e-11 * abs),
                "update() called without a preceding ftran of the entering column"
            );
        }
        let vmax = v.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        let t = self.order_index[pos];

        // Stage the elimination of the stale row `pos` (its off-diagonal
        // entries all sit at later order positions, i.e. below the diagonal
        // once `pos` rotates to the end). Column `pos` is handled out of
        // band: its new content is the spike, so the running diagonal
        // accumulator starts at v[pos] and each elimination step folds in
        // the spike entry of its pivot row. Nothing is committed until the
        // stability gate passes.
        let mut scatter = std::mem::take(&mut self.scatter);
        for &(col, u) in self.urows[pos].iter() {
            scatter.add(col, u);
        }
        let mut new_diag = v[pos];
        let mut eta_entries: Vec<(usize, f64)> = Vec::new();
        let mut growth_ok = true;
        for k in t + 1..self.m {
            let c = self.pos_order[k];
            let val = scatter.get(c);
            if val.abs() <= DROP_TOL {
                continue;
            }
            let mult = val / self.diag[c];
            if mult.abs() > MULT_GROWTH_LIMIT {
                growth_ok = false;
                break;
            }
            eta_entries.push((c, mult));
            for &(j, u) in self.urows[c].iter() {
                scatter.add(j, -mult * u);
            }
            if v[c] != 0.0 {
                new_diag -= mult * v[c];
            }
        }

        scatter.clear();
        self.scatter = scatter;

        // Stability gate: refuse on multiplier growth, and on a tiny
        // transformed diagonal (absolute, or relative to the spike —
        // catastrophic cancellation in the row elimination).
        if !growth_ok || new_diag.abs() < ETA_PIVOT_TOL || new_diag.abs() < STABILITY_RATIO * vmax {
            self.last_spike = v;
            return false;
        }

        // Commit. Remove the old column and row of `pos` from both mirrors…
        for &(i, _) in &self.ucols[pos] {
            self.urows[i].retain(|&(j, _)| j != pos);
        }
        self.fill -= self.ucols[pos].len();
        let old_row = std::mem::take(&mut self.urows[pos]);
        for &(c, _) in &old_row {
            self.ucols[c].retain(|&(i, _)| i != pos);
        }
        self.fill -= old_row.len();
        // …write the spike as the new (last-position) column…
        let mut new_col: Vec<(usize, f64)> = Vec::new();
        for (i, &vi) in v.iter().enumerate() {
            if i != pos && vi.abs() > DROP_TOL {
                new_col.push((i, vi));
                self.urows[i].push((pos, vi));
            }
        }
        self.fill += new_col.len();
        self.ucols[pos] = new_col;
        self.diag[pos] = new_diag;
        // …rotate `pos` to the end of the pivot order…
        self.pos_order.remove(t);
        self.pos_order.push(pos);
        for k in t..self.m {
            self.order_index[self.pos_order[k]] = k;
        }
        // …and record the row transformation (skipped when the stale row
        // was already empty — the update is then a pure column replacement).
        if !eta_entries.is_empty() {
            self.etas.push(RowEta {
                row: pos,
                entries: eta_entries,
            });
        }
        self.last_spike = v;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_columns(cols: &[&[f64]]) -> Vec<Vec<(usize, f64)>> {
        cols.iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(r, &v)| (r, v))
                    .collect()
            })
            .collect()
    }

    fn mat_vec(cols: &[&[f64]], x: &[f64]) -> Vec<f64> {
        let m = cols[0].len();
        let mut out = vec![0.0; m];
        for (k, col) in cols.iter().enumerate() {
            for r in 0..m {
                out[r] += col[r] * x[k];
            }
        }
        out
    }

    #[test]
    fn ftran_btran_solve_small_system() {
        // B columns (3x3), deliberately needing a row swap.
        let cols: Vec<&[f64]> = vec![&[0.0, 2.0, 1.0], &[1.0, 0.0, 1.0], &[1.0, 1.0, 0.0]];
        let mut f = Factorization::factorize(3, &dense_columns(&cols)).expect("nonsingular");
        assert_eq!(f.dim(), 3);

        let mut b = vec![3.0, 5.0, 4.0];
        f.ftran(&mut b);
        // Check B x = [3,5,4].
        let bx = mat_vec(&cols, &b);
        for (got, want) in bx.iter().zip([3.0, 5.0, 4.0]) {
            assert!((got - want).abs() < 1e-9, "{bx:?}");
        }

        let mut c = vec![1.0, -2.0, 0.5];
        f.btran(&mut c);
        // Check Bᵀ y = c, i.e. for every column k: col_k · y = c_k.
        for (k, col) in cols.iter().enumerate() {
            let dot: f64 = col.iter().zip(&c).map(|(a, y)| a * y).sum();
            let want = [1.0, -2.0, 0.5][k];
            assert!((dot - want).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let cols: Vec<&[f64]> = vec![&[1.0, 2.0], &[2.0, 4.0]];
        assert_eq!(
            Factorization::factorize(2, &dense_columns(&cols)).unwrap_err(),
            SingularBasis
        );
    }

    #[test]
    fn forrest_tomlin_update_matches_refactorization() {
        let cols: Vec<&[f64]> = vec![&[2.0, 0.0, 1.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]];
        let mut f = Factorization::factorize(3, &dense_columns(&cols)).expect("nonsingular");

        // Replace the column in position 1 with a_q = [1, 3, 0].
        let a_q = [1.0, 3.0, 0.0];
        let mut w = a_q.to_vec();
        f.ftran(&mut w);
        assert!(f.update(1, &w));

        let new_cols: Vec<&[f64]> = vec![&[2.0, 0.0, 1.0], &a_q, &[1.0, 1.0, 0.0]];
        let mut g = Factorization::factorize(3, &dense_columns(&new_cols)).expect("nonsingular");

        let rhs = [4.0, -1.0, 2.5];
        let mut x1 = rhs.to_vec();
        f.ftran(&mut x1);
        let mut x2 = rhs.to_vec();
        g.ftran(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-9, "{x1:?} vs {x2:?}");
        }

        let cost = [1.0, 1.0, -1.0];
        let mut y1 = cost.to_vec();
        f.btran(&mut y1);
        let mut y2 = cost.to_vec();
        g.btran(&mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-9, "{y1:?} vs {y2:?}");
        }
    }

    /// A long randomized chain of updates must keep agreeing with a fresh
    /// factorisation of the final column set — the regression test for the
    /// row-eta bookkeeping (order rotation, fill mirrors, spike algebra).
    #[test]
    fn chained_updates_match_refactorization() {
        let m = 8;
        let mut state = 0x5EED_1234_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f64 - 1000.0) / 250.0
        };
        // Start from a well-conditioned random basis.
        let mut cols: Vec<Vec<f64>> = (0..m)
            .map(|k| {
                let mut c: Vec<f64> = (0..m).map(|_| next()).collect();
                c[k] += 6.0; // diagonal dominance
                c
            })
            .collect();
        let dense = |cols: &[Vec<f64>]| -> Vec<Vec<(usize, f64)>> {
            cols.iter()
                .map(|c| {
                    c.iter()
                        .enumerate()
                        .filter(|(_, &v)| v != 0.0)
                        .map(|(r, &v)| (r, v))
                        .collect()
                })
                .collect()
        };
        let mut f = Factorization::factorize(m, &dense(&cols)).expect("nonsingular");
        for step in 0..20 {
            let pos = (step * 5) % m;
            let mut a_q: Vec<f64> = (0..m).map(|_| next()).collect();
            a_q[pos] += 6.0;
            let mut w = a_q.clone();
            f.ftran(&mut w);
            if !f.update(pos, &w) {
                // Stability refusal is legal; refactorise like the solver.
                cols[pos] = a_q;
                f = Factorization::factorize(m, &dense(&cols)).expect("nonsingular");
                continue;
            }
            cols[pos] = a_q;

            let mut g = Factorization::factorize(m, &dense(&cols)).expect("nonsingular");
            let rhs: Vec<f64> = (0..m).map(|i| (i as f64) - 3.0).collect();
            let mut x1 = rhs.clone();
            f.ftran(&mut x1);
            let mut x2 = rhs.clone();
            g.ftran(&mut x2);
            for (a, b) in x1.iter().zip(&x2) {
                assert!((a - b).abs() < 1e-6, "step {step}: ftran diverged");
            }
            let mut y1 = rhs.clone();
            f.btran(&mut y1);
            let mut y2 = rhs;
            g.btran(&mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                assert!((a - b).abs() < 1e-6, "step {step}: btran diverged");
            }
        }
        assert!(
            f.eta_count() >= 1,
            "the chain should have exercised row etas"
        );
    }

    #[test]
    fn tiny_update_pivot_is_refused() {
        let cols: Vec<&[f64]> = vec![&[1.0, 0.0], &[0.0, 1.0]];
        let mut f = Factorization::factorize(2, &dense_columns(&cols)).expect("nonsingular");
        // An entering column whose pivot element in position 0 is ~zero
        // (the spike diagonal is equally tiny for the identity basis).
        let mut w = vec![1e-12, 1.0];
        f.ftran(&mut w);
        assert!(!f.update(0, &w));
        assert_eq!(f.eta_count(), 0);
    }

    #[test]
    fn update_without_stale_row_is_a_pure_column_swap() {
        // Replacing the *last* pivot-order column leaves no sub-diagonal
        // remnants, so no row eta is recorded.
        let cols: Vec<&[f64]> = vec![&[1.0, 0.0], &[0.5, 1.0]];
        let mut f = Factorization::factorize(2, &dense_columns(&cols)).expect("nonsingular");
        let a_q = [1.0, 2.0];
        let mut w = a_q.to_vec();
        f.ftran(&mut w);
        assert!(f.update(1, &w));
        assert_eq!(f.eta_count(), 0, "pure column replacement needs no eta");
        let new_cols: Vec<&[f64]> = vec![&[1.0, 0.0], &a_q];
        let mut g = Factorization::factorize(2, &dense_columns(&new_cols)).expect("nonsingular");
        let mut x1 = vec![3.0, -1.0];
        f.ftran(&mut x1);
        let mut x2 = vec![3.0, -1.0];
        g.ftran(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
