//! Sparse column storage for the revised simplex.
//!
//! The constraint matrix is held in compressed-sparse-column (CSC) form:
//! the layout models produced by the P-ILP flow are extremely sparse (each
//! constraint touches a handful of the chain-point/direction variables), so
//! pricing and FTRAN right-hand sides walk short explicit column lists
//! instead of dense rows.

/// A read-only sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from per-column `(row, value)` entry lists.
    /// Duplicate row entries within a column are summed; explicit zeros are
    /// dropped.
    pub fn from_columns(nrows: usize, columns: &[Vec<(usize, f64)>]) -> CscMatrix {
        let mut col_ptr = Vec::with_capacity(columns.len() + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        let mut dense: Vec<f64> = vec![0.0; nrows];
        let mut touched: Vec<usize> = Vec::new();
        col_ptr.push(0);
        for col in columns {
            for &(r, v) in col {
                debug_assert!(r < nrows, "row {r} out of range (nrows {nrows})");
                if dense[r] == 0.0 && v != 0.0 {
                    touched.push(r);
                }
                dense[r] += v;
            }
            touched.sort_unstable();
            for &r in &touched {
                if dense[r] != 0.0 {
                    row_idx.push(r);
                    values.push(dense[r]);
                }
                dense[r] = 0.0;
            }
            touched.clear();
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            nrows,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The `(rows, values)` slices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates over the `(row, value)` entries of column `j`.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (rows, vals) = self.col(j);
        rows.iter().copied().zip(vals.iter().copied())
    }

    /// Dot product of column `j` with a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        self.col_iter(j).map(|(r, v)| v * dense[r]).sum()
    }
}

/// A read-only sparse matrix in compressed-sparse-row form — the row-major
/// mirror of [`CscMatrix`].
///
/// The dual simplex prices against one BTRAN'd row `ρ = B⁻ᵀe_r` per pivot:
/// with column storage every column must be dotted against `ρ` even though
/// `ρ` is sparse for sparse bases. Row storage turns that into
/// `Σ_{i: ρ_i≠0} ρ_i·A_{i·}` — work proportional to the touched rows only.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` entry lists.
    /// Duplicate column entries within a row are summed; explicit zeros are
    /// dropped.
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut acc = ScatterVec::new(ncols);
        row_ptr.push(0);
        for row in rows {
            for &(c, v) in row {
                debug_assert!(c < ncols, "column {c} out of range (ncols {ncols})");
                acc.add(c, v);
            }
            for (c, v) in acc.drain_sparse(0.0) {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The `(columns, values)` slices of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
}

/// A sparse vector that accumulates entries into a dense buffer while
/// tracking which positions were touched, so it can be cleared in
/// `O(touched)` instead of `O(len)`.
#[derive(Debug, Clone, Default)]
pub struct ScatterVec {
    values: Vec<f64>,
    touched: Vec<usize>,
    is_touched: Vec<bool>,
}

impl ScatterVec {
    /// An all-zero scatter vector of the given length.
    pub fn new(len: usize) -> ScatterVec {
        ScatterVec {
            values: vec![0.0; len],
            touched: Vec::new(),
            is_touched: vec![false; len],
        }
    }

    /// Length of the underlying dense buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no position has been touched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Current value at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Adds `v` at position `i`.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        if !self.is_touched[i] {
            self.is_touched[i] = true;
            self.touched.push(i);
        }
        self.values[i] += v;
    }

    /// Overwrites position `i` with `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        if !self.is_touched[i] {
            self.is_touched[i] = true;
            self.touched.push(i);
        }
        self.values[i] = v;
    }

    /// The positions touched since the last [`ScatterVec::clear`], in
    /// insertion order.
    #[inline]
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }

    /// Drains into an explicit sparse `(index, value)` list, dropping
    /// entries below `drop_tol` in magnitude, and clears the buffer.
    pub fn drain_sparse(&mut self, drop_tol: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.touched.len());
        for &i in &self.touched {
            let v = self.values[i];
            if v.abs() > drop_tol {
                out.push((i, v));
            }
            self.values[i] = 0.0;
            self.is_touched[i] = false;
        }
        self.touched.clear();
        out
    }

    /// Resets every touched position to zero.
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.values[i] = 0.0;
            self.is_touched[i] = false;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csc_round_trip_and_dedup() {
        // Column 0: rows {0: 1.0, 2: 2.0}; column 1 empty; column 2 has a
        // duplicate entry that must be summed and a cancelling pair that
        // must vanish.
        let cols = vec![
            vec![(2, 2.0), (0, 1.0)],
            vec![],
            vec![(1, 1.5), (1, 0.5), (3, 1.0), (3, -1.0)],
        ];
        let m = CscMatrix::from_columns(4, &cols);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0), (&[0usize, 2][..], &[1.0, 2.0][..]));
        assert_eq!(m.col(1).0.len(), 0);
        assert_eq!(m.col(2), (&[1usize][..], &[2.0][..]));
        let dense = [1.0, 10.0, 100.0, 1000.0];
        assert_eq!(m.col_dot(0, &dense), 201.0);
        assert_eq!(m.col_dot(2, &dense), 20.0);
    }

    #[test]
    fn scatter_vec_accumulates_and_clears() {
        let mut v = ScatterVec::new(5);
        assert!(v.is_empty());
        v.add(3, 1.0);
        v.add(1, 2.0);
        v.add(3, -1.0);
        v.set(0, 7.0);
        assert_eq!(v.get(3), 0.0);
        assert_eq!(v.get(1), 2.0);
        assert_eq!(v.len(), 5);
        let sparse = v.drain_sparse(1e-12);
        assert_eq!(sparse, vec![(1, 2.0), (0, 7.0)]);
        assert!(v.is_empty());
        assert_eq!(v.get(0), 0.0);
        v.add(2, 4.0);
        v.clear();
        assert_eq!(v.get(2), 0.0);
        assert!(v.is_empty());
    }
}
