//! Dense two-phase primal simplex — retained as the *reference oracle* for
//! the sparse revised simplex in [`crate::revised`].
//!
//! This was the original production solver; it now backs the golden
//! regression suite (`tests/golden.rs` cross-checks every revised-simplex
//! answer against it) and is exposed only through the hidden
//! [`LinearProgram::solve_dense`] entry point.
//!
//! The implementation follows the classical textbook tableau method:
//!
//! 1. Every model variable is transformed to a non-negative *standard*
//!    variable by shifting at a finite lower bound, mirroring at a finite
//!    upper bound, or splitting a free variable into a difference of two
//!    non-negative variables. Remaining finite upper bounds become explicit
//!    rows.
//! 2. Constraints are converted to equalities with slack/surplus columns and
//!    non-negative right-hand sides.
//! 3. Phase 1 minimises the sum of artificial variables to find a basic
//!    feasible solution (or prove infeasibility).
//! 4. Phase 2 minimises the real objective starting from that basis,
//!    detecting unboundedness.
//!
//! Dantzig pricing is used until a stall is detected, after which the solver
//! falls back to Bland's rule, which guarantees termination.

// Tableau arithmetic is naturally index-based; the oracle keeps the
// original (verified) loop style.
#![allow(clippy::needless_range_loop, clippy::ptr_arg)]

use crate::problem::{ConstraintOp, LinearProgram, LpError, LpSolution, Sense};
use crate::TOLERANCE;

/// How a model variable is represented in standard form.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = y + shift` with `y >= 0`.
    Shifted { col: usize, shift: f64 },
    /// `x = shift - y` with `y >= 0` (used when only an upper bound is finite).
    Mirrored { col: usize, shift: f64 },
    /// `x = y_plus - y_minus`, both `>= 0` (free variable).
    Split { plus: usize, minus: usize },
    /// The bounds force a single value; the variable does not appear in the
    /// tableau at all.
    Fixed(f64),
}

struct Standardised {
    /// Map from model variable to standard-form columns.
    map: Vec<VarMap>,
    /// Number of structural (non-slack, non-artificial) columns.
    num_cols: usize,
    /// Rows as dense coefficient vectors over structural columns.
    rows: Vec<Vec<f64>>,
    ops: Vec<ConstraintOp>,
    rhs: Vec<f64>,
    /// Objective over structural columns (always a minimisation).
    costs: Vec<f64>,
    /// Constant offset added to the objective by shifts/fixed variables.
    offset: f64,
}

/// Builds the standard form of the model.
fn standardise(lp: &LinearProgram) -> Result<Standardised, LpError> {
    let n = lp.num_vars();
    let lower = lp.lower_bounds();
    let upper = lp.upper_bounds();
    let sign = match lp.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut map = Vec::with_capacity(n);
    let mut num_cols = 0usize;
    let mut extra_upper_rows: Vec<(usize, f64)> = Vec::new(); // (column, bound value on the standard var)
    for i in 0..n {
        let (l, u) = (lower[i], upper[i]);
        if l.is_finite() && u.is_finite() && (u - l).abs() <= TOLERANCE {
            map.push(VarMap::Fixed(l));
        } else if l.is_finite() {
            let col = num_cols;
            num_cols += 1;
            if u.is_finite() {
                extra_upper_rows.push((col, u - l));
            }
            map.push(VarMap::Shifted { col, shift: l });
        } else if u.is_finite() {
            let col = num_cols;
            num_cols += 1;
            map.push(VarMap::Mirrored { col, shift: u });
        } else {
            let plus = num_cols;
            let minus = num_cols + 1;
            num_cols += 2;
            map.push(VarMap::Split { plus, minus });
        }
    }

    let mut costs = vec![0.0; num_cols];
    let mut offset = 0.0;
    for (i, &c) in lp.objective().iter().enumerate() {
        let c = c * sign;
        match map[i] {
            VarMap::Shifted { col, shift } => {
                costs[col] += c;
                offset += c * shift;
            }
            VarMap::Mirrored { col, shift } => {
                costs[col] -= c;
                offset += c * shift;
            }
            VarMap::Split { plus, minus } => {
                costs[plus] += c;
                costs[minus] -= c;
            }
            VarMap::Fixed(v) => offset += c * v,
        }
    }

    let mut rows = Vec::new();
    let mut ops = Vec::new();
    let mut rhs = Vec::new();
    for con in lp.constraints() {
        let mut row = vec![0.0; num_cols];
        let mut b = con.rhs;
        for &(v, c) in &con.coeffs {
            match map[v] {
                VarMap::Shifted { col, shift } => {
                    row[col] += c;
                    b -= c * shift;
                }
                VarMap::Mirrored { col, shift } => {
                    row[col] -= c;
                    b -= c * shift;
                }
                VarMap::Split { plus, minus } => {
                    row[plus] += c;
                    row[minus] -= c;
                }
                VarMap::Fixed(val) => b -= c * val,
            }
        }
        rows.push(row);
        ops.push(con.op);
        rhs.push(b);
    }
    for (col, bound) in extra_upper_rows {
        let mut row = vec![0.0; num_cols];
        row[col] = 1.0;
        rows.push(row);
        ops.push(ConstraintOp::Le);
        rhs.push(bound);
    }

    Ok(Standardised {
        map,
        num_cols,
        rows,
        ops,
        rhs,
        costs,
        offset,
    })
}

/// Solves the linear program. See the module documentation for the method.
pub(crate) fn solve(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    let std_form = standardise(lp)?;
    let m = std_form.rows.len();
    let n = std_form.num_cols;

    // Column layout: [structural | slack/surplus | artificial | rhs]
    let mut num_slack = 0usize;
    for op in &std_form.ops {
        if !matches!(op, ConstraintOp::Eq) {
            num_slack += 1;
        }
    }
    let slack_base = n;
    let art_base = n + num_slack;
    // Worst case: one artificial per row.
    let total_cols_max = art_base + m;

    let mut tableau: Vec<Vec<f64>> = vec![vec![0.0; total_cols_max + 1]; m];
    let mut basis: Vec<usize> = vec![usize::MAX; m];
    let mut num_art = 0usize;
    let mut slack_idx = 0usize;

    for r in 0..m {
        let mut flip = 1.0;
        if std_form.rhs[r] < 0.0 {
            flip = -1.0;
        }
        for c in 0..n {
            tableau[r][c] = flip * std_form.rows[r][c];
        }
        tableau[r][total_cols_max] = flip * std_form.rhs[r];

        let op = std_form.ops[r];
        match op {
            ConstraintOp::Le | ConstraintOp::Ge => {
                // slack (+1 for Le, -1 for Ge), flipped with the row
                let s = slack_base + slack_idx;
                slack_idx += 1;
                let coeff = if matches!(op, ConstraintOp::Le) {
                    1.0
                } else {
                    -1.0
                } * flip;
                tableau[r][s] = coeff;
                if coeff > 0.0 {
                    basis[r] = s;
                }
            }
            ConstraintOp::Eq => {}
        }
        if basis[r] == usize::MAX {
            // Need an artificial variable for this row.
            let a = art_base + num_art;
            num_art += 1;
            tableau[r][a] = 1.0;
            basis[r] = a;
        }
    }
    let total_cols = art_base + num_art;
    // Shrink rows to the actual width (keep rhs at index `total_cols`).
    for row in tableau.iter_mut() {
        let rhs_val = row[total_cols_max];
        row.truncate(total_cols);
        row.push(rhs_val);
    }

    let mut iterations = 0usize;
    let limit = lp.iteration_limit();

    // --- Phase 1 ---------------------------------------------------------------
    if num_art > 0 {
        let mut phase1_cost = vec![0.0; total_cols];
        for c in art_base..total_cols {
            phase1_cost[c] = 1.0;
        }
        let mut obj_row = build_objective_row(&tableau, &basis, &phase1_cost, total_cols);
        run_simplex(
            &mut tableau,
            &mut basis,
            &mut obj_row,
            &phase1_cost,
            total_cols,
            limit,
            &mut iterations,
            // In phase 1 artificial columns may re-enter only to leave again;
            // forbid them from entering to keep things simple and finite.
            art_base,
        )?;
        let phase1_value = -obj_row[total_cols];
        if phase1_value > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables that are still basic (at zero) out of
        // the basis when possible.
        for r in 0..m {
            if basis[r] >= art_base {
                if let Some(c) = (0..art_base).find(|&c| tableau[r][c].abs() > 1e-9) {
                    pivot(&mut tableau, &mut basis, r, c, total_cols);
                    iterations += 1;
                }
            }
        }
    }

    // --- Phase 2 ---------------------------------------------------------------
    let mut phase2_cost = vec![0.0; total_cols];
    phase2_cost[..std_form.costs.len()].copy_from_slice(&std_form.costs);
    // Artificial columns must never re-enter the basis.
    let mut obj_row = build_objective_row(&tableau, &basis, &phase2_cost, total_cols);
    run_simplex(
        &mut tableau,
        &mut basis,
        &mut obj_row,
        &phase2_cost,
        total_cols,
        limit,
        &mut iterations,
        art_base,
    )?;

    // Extract the solution.
    let mut std_values = vec![0.0; total_cols];
    for r in 0..m {
        let b = basis[r];
        if b < total_cols {
            std_values[b] = tableau[r][total_cols];
        }
    }
    // A basic artificial variable with a non-zero value means infeasible
    // (can happen when phase 1 stalls exactly at the tolerance).
    for (c, v) in std_values.iter().enumerate().skip(art_base) {
        if *v > 1e-6 {
            return Err(LpError::Infeasible);
        }
        let _ = c;
    }

    let mut values = vec![0.0; lp.num_vars()];
    for (i, vm) in std_form.map.iter().enumerate() {
        values[i] = match *vm {
            VarMap::Shifted { col, shift } => std_values[col] + shift,
            VarMap::Mirrored { col, shift } => shift - std_values[col],
            VarMap::Split { plus, minus } => std_values[plus] - std_values[minus],
            VarMap::Fixed(v) => v,
        };
    }

    let min_objective = -obj_row[total_cols] + std_form.offset;
    let objective = match lp.sense() {
        Sense::Minimize => min_objective,
        Sense::Maximize => -min_objective,
    };

    Ok(LpSolution {
        values,
        objective,
        iterations,
        refactorizations: 0,
        dual_iterations: 0,
        bound_flips: 0,
    })
}

/// Builds the reduced-cost row for the given basis (the negative of the
/// priced-out objective), with the current objective value in the last slot.
fn build_objective_row(
    tableau: &[Vec<f64>],
    basis: &[usize],
    costs: &[f64],
    total_cols: usize,
) -> Vec<f64> {
    let mut row = vec![0.0; total_cols + 1];
    row[..total_cols].copy_from_slice(&costs[..total_cols]);
    // Price out the basic columns: row := costs - sum_b cost_b * tableau_row_b
    for (r, &b) in basis.iter().enumerate() {
        let cb = costs[b];
        if cb != 0.0 {
            for c in 0..=total_cols {
                row[c] -= cb * tableau[r][c];
            }
        }
    }
    row
}

/// Runs primal simplex iterations until optimality, unboundedness or the
/// iteration limit. `forbidden_from` marks the first column (artificials)
/// that may never be chosen as an entering column.
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    obj_row: &mut Vec<f64>,
    costs: &[f64],
    total_cols: usize,
    limit: usize,
    iterations: &mut usize,
    forbidden_from: usize,
) -> Result<(), LpError> {
    let m = tableau.len();
    let mut stall_counter = 0usize;
    let mut last_objective = f64::INFINITY;

    loop {
        if *iterations >= limit {
            return Err(LpError::IterationLimit);
        }
        // Select the entering column.
        let use_bland = stall_counter > 2 * (m + total_cols);
        let mut entering: Option<usize> = None;
        if use_bland {
            for c in 0..forbidden_from {
                if obj_row[c] < -TOLERANCE {
                    entering = Some(c);
                    break;
                }
            }
        } else {
            let mut best = -TOLERANCE;
            for c in 0..forbidden_from {
                if obj_row[c] < best {
                    best = obj_row[c];
                    entering = Some(c);
                }
            }
        }
        let Some(col) = entering else {
            return Ok(()); // optimal
        };

        // Ratio test for the leaving row.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            let a = tableau[r][col];
            if a > TOLERANCE {
                let ratio = tableau[r][total_cols] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && leaving.map(|lr| basis[r] < basis[lr]).unwrap_or(false))
                {
                    best_ratio = ratio;
                    leaving = Some(r);
                }
            }
        }
        let Some(row) = leaving else {
            return Err(LpError::Unbounded);
        };

        pivot_with_obj(tableau, basis, obj_row, row, col, total_cols);
        *iterations += 1;

        let objective = -obj_row[total_cols];
        if objective < last_objective - 1e-10 {
            stall_counter = 0;
            last_objective = objective;
        } else {
            stall_counter += 1;
        }
        let _ = costs;
    }
}

/// Pivots the tableau (without an objective row) on `(row, col)`.
fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total_cols: usize) {
    let pivot_val = tableau[row][col];
    for c in 0..=total_cols {
        tableau[row][c] /= pivot_val;
    }
    for r in 0..tableau.len() {
        if r != row {
            let factor = tableau[r][col];
            if factor.abs() > 1e-12 {
                for c in 0..=total_cols {
                    tableau[r][c] -= factor * tableau[row][c];
                }
            }
        }
    }
    basis[row] = col;
}

/// Pivots the tableau and the objective row on `(row, col)`.
fn pivot_with_obj(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    obj_row: &mut [f64],
    row: usize,
    col: usize,
    total_cols: usize,
) {
    pivot(tableau, basis, row, col, total_cols);
    let factor = obj_row[col];
    if factor.abs() > 1e-12 {
        for c in 0..=total_cols {
            obj_row[c] -= factor * tableau[row][c];
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{ConstraintOp, LinearProgram, LpError, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36
        let mut lp = LinearProgram::new(2, Sense::Maximize);
        lp.set_objective_coeff(0, 3.0);
        lp.set_objective_coeff(1, 5.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(1, 2.0)], ConstraintOp::Le, 12.0);
        lp.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 6.0);
    }

    #[test]
    fn minimisation_with_ge_constraints_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7,y=3 obj 23
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 2.0);
        lp.set_objective_coeff(1, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 10.0);
        lp.set_bounds(0, 2.0, f64::INFINITY);
        lp.set_bounds(1, 3.0, f64::INFINITY);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 23.0);
        assert_close(s.values[0], 7.0);
        assert_close(s.values[1], 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, 3x + 2y = 8 -> x=2, y=1, obj=3
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintOp::Eq, 4.0);
        lp.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintOp::Eq, 8.0);
        let s = lp.solve().unwrap();
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 1.0);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn infeasible_system_is_detected() {
        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 5.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0);
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_objective_is_detected() {
        let mut lp = LinearProgram::new(1, Sense::Maximize);
        lp.set_objective_coeff(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn free_and_negative_variables() {
        // min x + y with x free, y in [-5, -1], x + y >= -3  -> x = -2? Let's see:
        // objective decreases with both; x >= -3 - y, minimise x + y = (x+y) >= -3.
        // Optimum -3 on the line; solver must find some point with x+y = -3.
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 1.0);
        lp.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        lp.set_bounds(1, -5.0, -1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, -3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -3.0);
        assert_close(s.values[0] + s.values[1], -3.0);
        assert!(s.values[1] >= -5.0 - 1e-9 && s.values[1] <= -1.0 + 1e-9);
    }

    #[test]
    fn upper_bounds_are_respected() {
        // max x + y, x <= 3, y <= 2 via bounds only.
        let mut lp = LinearProgram::new(2, Sense::Maximize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 1.0);
        lp.set_bounds(0, 0.0, 3.0);
        lp.set_bounds(1, 0.0, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.values[0], 3.0);
        assert_close(s.values[1], 2.0);
    }

    #[test]
    fn fixed_variables_are_substituted() {
        // y fixed at 4 by its bounds.
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 10.0);
        lp.set_bounds(1, 4.0, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 6.0);
        let s = lp.solve().unwrap();
        assert_close(s.values[1], 4.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.objective, 42.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut lp = LinearProgram::new(3, Sense::Maximize);
        for v in 0..3 {
            lp.set_objective_coeff(v, 1.0);
        }
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    lp.add_constraint(vec![(i, 1.0), (j, -1.0)], ConstraintOp::Le, 0.0);
                }
            }
        }
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Le, 9.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 9.0);
        assert_close(s.values[0], 3.0);
    }

    #[test]
    fn zero_variable_problem() {
        let lp = LinearProgram::new(0, Sense::Minimize);
        let s = lp.solve().unwrap();
        assert_eq!(s.values.len(), 0);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn negative_rhs_handling() {
        // x - y <= -2 with x, y >= 0 -> y >= x + 2; min y -> x = 0, y = 2.
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Le, -2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
        assert_close(s.values[1], 2.0);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // The same equality twice plus a third dependent one.
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective_coeff(0, 1.0);
        lp.set_objective_coeff(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], ConstraintOp::Eq, 10.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.values[0], 5.0);
    }
}
