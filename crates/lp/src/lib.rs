//! A self-contained sparse linear-programming solver.
//!
//! This crate is the numerical substrate underneath the MILP layer
//! (`rfic-milp`) and, transitively, the progressive-ILP RFIC layout engine.
//! The DAC 2016 paper solves its models with a commercial solver; this
//! crate provides the open equivalent: a **bounded-variable revised
//! simplex** over a compressed-sparse-column matrix ([`CscMatrix`]) with
//!
//! * arbitrary variable bounds handled natively (finite, one-sided or
//!   free — no variable splitting), plus bound-to-bound flips,
//! * `<=`, `>=` and `=` constraints,
//! * minimisation or maximisation objectives,
//! * an LU-factorised basis with product-form (eta) updates and periodic
//!   refactorisation,
//! * **warm starts**: [`LinearProgram::solve_warm`] accepts the [`Basis`]
//!   of a previous solve — also of a smaller model — and re-enters through
//!   the **dual simplex**, which makes branch-and-bound bound changes and
//!   lazily separated constraints cheap re-solves,
//! * **dual steepest-edge pricing** with a **bound-flipping (long-step)
//!   dual ratio test** ([`PricingRule::DualSteepestEdge`]): `δ²/β`
//!   leaving-row selection with Forrest–Goldfarb reference weights that
//!   survive warm-start handoff on the [`Basis`], and batched
//!   bound-to-bound flips of boxed nonbasics — the accelerator for the
//!   warm branch-and-bound re-solve path,
//! * infeasibility and unboundedness detection, and
//! * Bland's anti-cycling rule as a fallback after degenerate stalls.
//!
//! The original dense two-phase tableau implementation is retained as a
//! hidden test oracle (`LinearProgram::solve_dense`); the golden regression
//! suite asserts that both solvers agree on objectives and status.
//!
//! # Examples
//!
//! ```
//! use rfic_lp::{ConstraintOp, LinearProgram, Sense};
//!
//! // maximise 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x, y >= 0
//! let mut lp = LinearProgram::new(2, Sense::Maximize);
//! lp.set_objective_coeff(0, 3.0);
//! lp.set_objective_coeff(1, 2.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
//! let solution = lp.solve()?;
//! assert!((solution.objective - 12.0).abs() < 1e-6);
//! assert!((solution.values[0] - 4.0).abs() < 1e-6);
//! # Ok::<(), rfic_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
mod dense;
pub mod fault;
mod presolve;
mod problem;
mod revised;
mod sparse;
pub mod sync;

pub use presolve::{Postsolve, PresolveConfig, PresolveStats, Presolved};

/// Hidden exports for the `rfic-bench` microbenches (`lp_ftran` /
/// `lp_btran` drive the factorisation kernels directly). Not a public
/// API — no stability promises.
#[doc(hidden)]
pub mod bench_support {
    pub use crate::basis::{Factorization, SingularBasis};
}
pub use problem::{
    CancelToken, Constraint, ConstraintOp, LinearProgram, LpError, LpSolution, PricingRule, Sense,
};
pub use revised::{Basis, NonbasicStatus, TableauEntry, TableauRow};
pub use sparse::{CscMatrix, CsrMatrix, ScatterVec};

/// Numerical tolerance used by the solver for feasibility and optimality
/// tests.
pub const TOLERANCE: f64 = 1e-7;

// The warm-start state and the model itself cross thread boundaries in the
// parallel branch-and-bound layer; keep them `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Basis>();
    assert_send_sync::<LinearProgram>();
    assert_send_sync::<LpSolution>();
    assert_send_sync::<TableauRow>();
};
