//! A self-contained dense linear-programming solver.
//!
//! This crate is the numerical substrate underneath the MILP layer
//! (`rfic-milp`) and, transitively, the progressive-ILP RFIC layout engine.
//! The DAC 2016 paper solves its models with a commercial solver; this
//! crate provides the open equivalent: a classical **two-phase primal
//! simplex** on a dense tableau with
//!
//! * arbitrary variable bounds (finite, one-sided or free),
//! * `<=`, `>=` and `=` constraints,
//! * minimisation or maximisation objectives,
//! * infeasibility and unboundedness detection, and
//! * Bland's anti-cycling rule as a fallback after degenerate stalls.
//!
//! The models produced by the layout engine are small-to-medium dense
//! problems (hundreds of rows/columns per progressive phase), which is the
//! regime a dense tableau handles comfortably and predictably.
//!
//! # Examples
//!
//! ```
//! use rfic_lp::{ConstraintOp, LinearProgram, Sense};
//!
//! // maximise 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x, y >= 0
//! let mut lp = LinearProgram::new(2, Sense::Maximize);
//! lp.set_objective_coeff(0, 3.0);
//! lp.set_objective_coeff(1, 2.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
//! let solution = lp.solve()?;
//! assert!((solution.objective - 12.0).abs() < 1e-6);
//! assert!((solution.values[0] - 4.0).abs() < 1e-6);
//! # Ok::<(), rfic_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;

pub use problem::{Constraint, ConstraintOp, LinearProgram, LpError, LpSolution, Sense};

/// Numerical tolerance used by the solver for feasibility and optimality
/// tests.
pub const TOLERANCE: f64 = 1e-7;
