//! Poison-tolerant synchronisation helpers shared by the solver stack.
//!
//! `Mutex::lock` returns `Err` once any thread panicked while holding
//! the lock — and with the panic-isolation layer a worker panic is a
//! *survivable* event, not process death. Every protected structure in
//! the pool/job/cache paths is written so its invariants hold at each
//! unlock point (claims are single-field increments, result slots are
//! write-once), so the right response to poison is to keep going with
//! the inner guard rather than propagate a second panic. These helpers
//! centralise that policy; bare `.lock().unwrap()` is reserved for
//! test-only code.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a panicking thread poisoned
/// it.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the guard if the mutex was poisoned while
/// this thread was parked.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Method-call form of [`lock`], so `mutex.lock().unwrap()` call sites
/// convert one-for-one to `mutex.lock_recover()`.
pub trait LockExt<T> {
    /// Locks, recovering the guard if the mutex was poisoned.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        lock(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_a_poisoned_mutex() {
        let mutex = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison it");
        }));
        assert!(mutex.is_poisoned());
        assert_eq!(*lock(&mutex), 7);
    }
}
