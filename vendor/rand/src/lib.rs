//! Minimal vendored stub of `rand`.
//!
//! Provides exactly the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over float and integer
//! ranges and `seq::SliceRandom::shuffle`. The generator is SplitMix64 —
//! deterministic and statistically fine for synthetic-benchmark generation,
//! though *not* the same stream as the real `rand::StdRng` (seeded circuits
//! are deterministic per build of this stub, which is what the tests rely
//! on).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator trait (subset).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (subset of `rand`'s trait).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = rng.next_u64() as f64 / u64::MAX as f64;
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u8, i64, i32);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-based stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
