//! Minimal vendored stub of `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`) as a plain
//! wall-clock harness: each benchmark is warmed up once and then sampled
//! until a small time budget is exhausted, and the mean time per iteration
//! is printed.
//!
//! Setting `RFIC_BENCH_JSON=<path>` additionally writes every measurement to
//! `<path>` as JSON — this is how `BENCH_solver.json` baselines are
//! recorded.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `(id, mean_ns, min_ns, iterations)` per benchmark.
static RESULTS: Mutex<Vec<(String, f64, f64, u64)>> = Mutex::new(Vec::new());

/// How batched inputs are grouped (accepted and ignored: every batch has
/// size one in the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup data.
    SmallInput,
    /// Large per-iteration setup data.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            time_budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let budget = self.time_budget;
        run_benchmark(&name.into(), sample_size, budget, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the per-benchmark time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.time_budget = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&id, sample_size, self.criterion.time_budget, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; measures the routine.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// `(total_duration, min_iteration, iterations)` accumulated by
    /// `iter`/`iter_batched`. The per-iteration minimum is recorded because
    /// it is the noise-robust statistic: host steal and scheduler jitter
    /// only ever *add* time, so the minimum tracks the true compute cost
    /// (the regression gate compares minima, not means).
    measured: Option<(Duration, Duration, u64)>,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not measured).
        black_box(routine());
        let wall = Instant::now();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u64;
        while iters < self.samples as u64 && wall.elapsed() < self.budget {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            iters += 1;
        }
        if iters == 0 {
            min = Duration::ZERO;
        }
        self.measured = Some((total, min, iters.max(1)));
    }

    /// Measures `routine` with a fresh setup value per iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u64;
        let wall = Instant::now();
        while iters < self.samples as u64 && wall.elapsed() < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            iters += 1;
        }
        if iters == 0 {
            min = Duration::ZERO;
        }
        self.measured = Some((total.max(Duration::from_nanos(1)), min, iters.max(1)));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: F) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        budget,
        measured: None,
    };
    f(&mut bencher);
    let (total, min, iters) = bencher
        .measured
        .unwrap_or((Duration::ZERO, Duration::ZERO, 0));
    let mean_ns = if iters == 0 {
        0.0
    } else {
        total.as_nanos() as f64 / iters as f64
    };
    let min_ns = min.as_nanos() as f64;
    println!(
        "bench: {id:<55} {:>12.3} µs/iter (min {:>12.3} µs, n={iters})",
        mean_ns / 1e3,
        min_ns / 1e3
    );
    RESULTS
        .lock()
        .unwrap()
        .push((id.to_string(), mean_ns, min_ns, iters));
}

/// Internals used by `criterion_main!`.
pub mod private {
    /// Writes collected measurements as JSON when `RFIC_BENCH_JSON` is set.
    pub fn finalize() {
        let Some(path) = std::env::var_os("RFIC_BENCH_JSON") else {
            return;
        };
        let results = super::RESULTS.lock().unwrap();
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, (name, mean_ns, min_ns, iters)) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"mean_ns\": {mean_ns:.1}, \"min_ns\": {min_ns:.1}, \"iterations\": {iters} }}{sep}\n"
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion stub: failed to write {path:?}: {e}");
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::private::finalize();
        }
    };
}
