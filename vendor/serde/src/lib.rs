//! Minimal vendored stub of `serde`.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` as marker
//! capabilities (no serialisation is performed anywhere — there is no
//! `serde_json` in the tree), so empty marker traits plus trivial derive
//! macros are sufficient. See `vendor/README.md`.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {} impl Deserialize for $t {})*
    };
}

impl_markers!(
    bool, char, String, str, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32,
    f64
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<T: Deserialize> Deserialize for std::collections::BTreeSet<T> {}
impl Serialize for std::time::Duration {}
impl Deserialize for std::time::Duration {}

macro_rules! impl_tuple_markers {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    };
}

impl_tuple_markers!(A);
impl_tuple_markers!(A, B);
impl_tuple_markers!(A, B, C);
impl_tuple_markers!(A, B, C, D);
