//! Minimal vendored stub of `proptest`.
//!
//! Supports the subset used by this workspace's property tests: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `Strategy` with
//! `prop_map`, range / tuple / vec / bool strategies and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed; there is
//! no shrinking — a failing case panics with the ordinary assert message.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Configuration accepted by `proptest!`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Test-case driver: a deterministic RNG seeded per property.
pub mod test_runner {
    use super::ProptestConfig;

    /// Deterministic SplitMix64 generator driving value generation.
    #[derive(Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Creates a runner seeded from the property name.
        pub fn new(name: &str, _config: &ProptestConfig) -> TestRunner {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRunner;

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> f64 {
        self.start + runner.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (runner.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `range`.
    pub struct VecStrategy<S> {
        elem: S,
        range: Range<usize>,
    }

    /// Generates vectors of `elem` values with a length in `range`.
    pub fn vec<S: Strategy>(elem: S, range: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.range.end - self.range.start).max(1) as u64;
            let len = self.range.start + (runner.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(runner)).collect()
        }
    }
}

/// Primitive-type strategies (the `prop::` namespace of the prelude).
pub mod bool {
    use super::{Strategy, TestRunner};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(stringify!($name), &config);
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)*
                $body
            }
        }
        $crate::__proptest_items!{ config = $cfg; $($rest)* }
    };
}

/// Declares property tests (subset of the real macro's grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The commonly-imported prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}
