//! Minimal vendored stub of `serde_derive`.
//!
//! Emits trivial marker-trait impls (`impl serde::Serialize for T {}`) for
//! plain (non-generic) structs and enums, which covers every derived type in
//! this workspace. Implemented directly on `proc_macro` — no `syn`/`quote`,
//! because the build environment has no registry access.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => {
                            if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
                            {
                                panic!(
                                    "vendored serde_derive stub does not support generic type `{name}`"
                                );
                            }
                            return name.to_string();
                        }
                        other => panic!("expected type name after `{word}`, found {other:?}"),
                    }
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("vendored serde_derive stub: no struct/enum found in derive input")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
