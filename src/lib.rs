//! `rfic-layout` — concurrent device placement and fixed-length microstrip
//! routing for millimetre-wave CMOS RFICs.
//!
//! This is the facade crate of the workspace reproducing the DAC 2016 paper
//! *"Novel CMOS RFIC Layout Generation with Concurrent Device Placement and
//! Fixed-Length Microstrip Routing"* (Tseng et al.). It re-exports the
//! public API of every sub-crate:
//!
//! * [`geom`] — planar geometry (rectangles, rectilinear segments, bend
//!   smoothing, equivalent-length model).
//! * [`netlist`] — circuit model, technology rules and the synthetic
//!   benchmark circuits of Table 1.
//! * [`lp`] / [`milp`] — the linear-programming and branch-and-bound MILP
//!   solver substrate (the stand-in for the commercial solver used by the
//!   paper).
//! * [`core`] — the paper's contribution: the concurrent placement/routing
//!   ILP model and the progressive ILP (P-ILP) flow, plus DRC verification
//!   and reporting.
//! * [`em`] — thin-film microstrip transmission-line evaluation used to
//!   reproduce the S-parameter comparison of Figure 11.
//! * [`baseline`] — manual-style and sequential place-then-route baselines.
//!
//! # Quickstart
//!
//! ```
//! use rfic_layout::netlist::benchmarks;
//! use rfic_layout::core::{Pilp, PilpConfig};
//!
//! // Generate the small demonstration circuit and lay it out.
//! let circuit = benchmarks::tiny_circuit();
//! let layout = Pilp::new(PilpConfig::fast()).run(&circuit.netlist)?;
//! println!("total bends: {}", layout.report().total_bends);
//! # Ok::<(), rfic_layout::core::PilpError>(())
//! ```

#![forbid(unsafe_code)]

pub use rfic_baseline as baseline;
pub use rfic_core as core;
pub use rfic_em as em;
pub use rfic_geom as geom;
pub use rfic_lp as lp;
pub use rfic_milp as milp;
pub use rfic_netlist as netlist;
