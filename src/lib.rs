//! `rfic-layout` — concurrent device placement and fixed-length microstrip
//! routing for millimetre-wave CMOS RFICs.
//!
//! This is the facade crate of the workspace reproducing the DAC 2016 paper
//! *"Novel CMOS RFIC Layout Generation with Concurrent Device Placement and
//! Fixed-Length Microstrip Routing"* (Tseng et al.). It re-exports the
//! public API of every sub-crate:
//!
//! * [`geom`] — planar geometry (rectangles, rectilinear segments, bend
//!   smoothing, equivalent-length model).
//! * [`netlist`] — circuit model, technology rules and the synthetic
//!   benchmark circuits of Table 1.
//! * [`lp`] / [`milp`] — the linear-programming and branch-and-bound MILP
//!   solver substrate (the stand-in for the commercial solver used by the
//!   paper).
//! * [`core`] — the paper's contribution: the concurrent placement/routing
//!   ILP model and the progressive ILP (P-ILP) flow, plus DRC verification
//!   and reporting.
//! * [`em`] — thin-film microstrip transmission-line evaluation used to
//!   reproduce the S-parameter comparison of Figure 11.
//! * [`baseline`] — manual-style and sequential place-then-route baselines.
//! * [`protocol`] — the hand-rolled JSON layer behind the `serve` binary's
//!   line-delimited request/response protocol.
//!
//! # Quickstart
//!
//! The blocking one-shot entry point:
//!
//! ```
//! use rfic_layout::netlist::benchmarks;
//! use rfic_layout::core::{Pilp, PilpConfig};
//!
//! // Generate the small demonstration circuit and lay it out.
//! let circuit = benchmarks::tiny_circuit();
//! let layout = Pilp::new(PilpConfig::fast()).run(&circuit.netlist)?;
//! println!("total bends: {}", layout.report().total_bends);
//! # Ok::<(), rfic_layout::core::PilpError>(())
//! ```
//!
//! The same flow as an asynchronous job — submit returns immediately,
//! the solves run on a shared [`core::JobContext`] pool, and the handle
//! supports progress, cancellation and deadlines:
//!
//! ```no_run
//! use rfic_layout::netlist::benchmarks;
//! use rfic_layout::core::{JobContext, Pilp, PilpConfig};
//! use std::time::Duration;
//!
//! let circuit = benchmarks::tiny_circuit();
//! let config = PilpConfig::builder()
//!     .fast()
//!     .deadline(Duration::from_secs(120))
//!     .build();
//! let ctx = JobContext::new(0); // 0 = hardware parallelism
//! let job = Pilp::new(config).submit_in(&circuit.netlist, &ctx);
//! println!("{} solves so far", job.progress().solves);
//! let layout = job.wait()?;
//! println!("total bends: {}", layout.report().total_bends);
//! ctx.shutdown();
//! # Ok::<(), rfic_layout::core::PilpError>(())
//! ```

#![forbid(unsafe_code)]

pub mod protocol;

pub use rfic_baseline as baseline;
pub use rfic_core as core;
pub use rfic_em as em;
pub use rfic_geom as geom;
pub use rfic_lp as lp;
pub use rfic_milp as milp;
pub use rfic_netlist as netlist;

// The layout-job API at the crate root, so servers built on the facade
// can name the service types without digging through sub-crates.
pub use rfic_core::{
    FlowCache, JobContext, JobHandle, JobProgress, Pilp, PilpConfig, PilpConfigBuilder, PilpError,
    PilpResult,
};
