//! The hand-rolled JSON layer behind the `serve` binary's line-delimited
//! request/response protocol.
//!
//! The implementation lives in [`rfic_netlist::json`] so that the netlist
//! wire format ([`rfic_netlist::wire`]) can parse and emit documents with
//! the same parser the service uses; this module re-exports it unchanged
//! for protocol-level callers. See `docs/PROTOCOL.md` for the complete
//! wire reference and `docs/NETLIST_SCHEMA.md` for the netlist document
//! format.

pub use rfic_netlist::json::{escape, parse, Json, ObjectBuilder, MAX_DEPTH};
