//! `serve` — a line-delimited JSON layout service over stdin/stdout.
//!
//! Each input line is one request object; each output line is one
//! response object. All submitted jobs share a single
//! [`rfic_layout::core::JobContext`] — one solver pool, one solve-site
//! cache — so N concurrent requests multiplex a fixed worker set instead
//! of oversubscribing the machine.
//!
//! ## Requests
//!
//! | op         | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `submit`   | `circuit` (a named benchmark) **or** `netlist` (an inline document, `docs/NETLIST_SCHEMA.md`), optional `config` (`fast`*/`thorough`), `deadline_ms`, `threads`, `area` (`[w,h]` µm) |
//! | `sweep`    | `circuit` or `netlist`, `variants` (array of `{target_scale?, area?, spacing?}` objects), optional `config`, `deadline_ms`, `threads`; blocks until every variant is laid out |
//! | `validate` | `netlist` — schema-check only, no job is scheduled            |
//! | `export`   | `circuit` — the named benchmark as a wire-format document     |
//! | `status`   | `job`                                                         |
//! | `result`   | `job` (blocks until done), optional `report`/`svg` booleans   |
//! | `cancel`   | `job`                                                         |
//! | `shutdown` | optional `drain` boolean                                      |
//!
//! The full wire reference lives in `docs/PROTOCOL.md`; this header is
//! the summary.
//!
//! Requests are validated strictly: unknown ops, unknown fields,
//! out-of-range values (`deadline_ms` ∉ (0, 86 400 000], `threads` ∉
//! 0..=8, non-positive or oversized `area`) and over-long lines are
//! rejected with stable error codes instead of being silently coerced.
//! The line cap is 64 KiB, raised to 1 MiB for lines that carry an
//! inline `"netlist"` document. Inline netlists are schema-validated
//! ([`rfic_layout::netlist::wire`]) **before** any solver work is
//! scheduled; rejections carry the `invalid_netlist` code plus the
//! wire-level `detail` code and field `path`.
//!
//! ## Lifecycle
//!
//! * `--workers N` — solver-pool worker count (0 = hardware
//!   parallelism).
//! * `--max-jobs N` — at most N unfinished jobs at once; further
//!   `submit`s fail with code `backpressure` until one finishes.
//! * `--result-ttl-secs S` — finished jobs are evicted S seconds after
//!   completion (their results become `unknown_job`), bounding memory
//!   across a long-lived session.
//! * `{"op":"shutdown"}` cancels every in-flight job, drains the pool
//!   and exits. `{"op":"shutdown","drain":true}` instead keeps serving
//!   `status`/`result`/`cancel` while the in-flight jobs run to
//!   completion, rejects new `submit`s with code `shutting_down`, and
//!   exits once the last job finishes.
//!
//! ## Example
//!
//! ```text
//! $ printf '%s\n' \
//!     '{"op":"submit","circuit":"tiny"}' \
//!     '{"op":"result","job":1}' \
//!     '{"op":"shutdown"}' | serve
//! {"job":1,"ok":true,"op":"submit"}
//! {"drc_violations":0,"exact_lengths":3,...,"ok":true,"op":"result","state":"done"}
//! {"ok":true,"op":"shutdown"}
//! ```
//!
//! Failures are `{"ok":false,"error":{"code":...,"message":...}}`.
//! Request-level codes: `bad_request`, `line_too_long`, `unknown_job`,
//! `backpressure`, `shutting_down`. Job failures map [`PilpError`]
//! variants to `cancelled`, `deadline_exceeded`, `pool_shutdown`,
//! `invalid_netlist`, `phase_failed` and `internal` (a contained panic —
//! the faulty job alone fails; the service and its sibling jobs keep
//! running).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use rfic_layout::core::{render, JobContext, JobHandle, Pilp, PilpConfig, PilpError, PilpResult};
use rfic_layout::netlist::{benchmarks, wire, Netlist};
use rfic_layout::protocol::{parse, Json, ObjectBuilder};

/// Longest accepted request line. Anything larger is answered with
/// `line_too_long` and never reaches the JSON parser.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Raised line cap for requests carrying an inline `"netlist"`
/// document: a maximal schema-legal netlist (512 devices with pins, 1024
/// nets) runs to a few hundred KiB of JSON, far over the 64 KiB
/// discipline that bounds every other op. Lines containing the
/// substring `"netlist"` get this cap instead; everything else keeps
/// the tight one.
const MAX_NETLIST_LINE_BYTES: usize = 1024 * 1024;

/// Upper bound on `deadline_ms`: one day. Catches sign/unit mistakes
/// before they turn into a job that never times out.
const MAX_DEADLINE_MS: f64 = 86_400_000.0;

/// Upper bound on explicit `threads` requests (the pool caps further).
const MAX_THREADS: f64 = 8.0;

/// Upper bound on either `area` dimension, in µm (1 m of RFIC die is a
/// unit mistake, not a design).
const MAX_AREA_UM: f64 = 1e6;

/// Upper bound on variants per `sweep` request: enough for a dense
/// parameter scan, small enough that one request cannot monopolise the
/// service for minutes.
const MAX_SWEEP_VARIANTS: usize = 16;

/// Bounds on a variant's `target_scale` multiplier.
const MAX_TARGET_SCALE: f64 = 10.0;

/// Upper bound on a variant's `spacing` rule, in µm.
const MAX_SPACING_UM: f64 = 1e3;

/// Default `--max-jobs`: unfinished jobs admitted before `submit`
/// answers `backpressure`.
const DEFAULT_MAX_JOBS: usize = 32;

/// Default `--result-ttl-secs`: how long a finished job's result stays
/// queryable.
const DEFAULT_RESULT_TTL_SECS: u64 = 600;

/// One submitted job: the handle plus the netlist it was built from
/// (needed to render SVG and count strips for the result payload), plus
/// the completion timestamp driving TTL eviction.
struct ServedJob {
    handle: JobHandle,
    netlist: Netlist,
    /// Set by the reaper when the job is first observed finished.
    finished_at: Option<Instant>,
}

/// Stable protocol error code for a flow error.
fn error_code(error: &PilpError) -> &'static str {
    match error {
        PilpError::Cancelled => "cancelled",
        PilpError::DeadlineExceeded => "deadline_exceeded",
        PilpError::PoolShutdown => "pool_shutdown",
        PilpError::InvalidNetlist(_) => "invalid_netlist",
        PilpError::Internal { .. } => "internal",
        PilpError::Phase { .. } => "phase_failed",
    }
}

fn error_response(op: &str, code: &str, message: &str) -> Json {
    ObjectBuilder::new()
        .set("ok", Json::Bool(false))
        .set("op", Json::String(op.to_string()))
        .set(
            "error",
            ObjectBuilder::new()
                .set("code", Json::String(code.to_string()))
                .set("message", Json::String(message.to_string()))
                .build(),
        )
        .build()
}

/// Rejects requests carrying fields outside the op's whitelist, so a
/// typo (`"deadline"` for `"deadline_ms"`) fails loudly instead of
/// being silently ignored.
fn check_fields(op: &str, request: &Json, allowed: &[&str]) -> Option<Json> {
    let Json::Object(entries) = request else {
        return Some(error_response(
            op,
            "bad_request",
            "request must be an object",
        ));
    };
    for key in entries.keys() {
        if !allowed.contains(&key.as_str()) {
            return Some(error_response(
                op,
                "bad_request",
                &format!("unknown field {key:?} for op {op:?}"),
            ));
        }
    }
    None
}

/// A named built-in circuit: protocol name plus its constructor.
type NamedCircuit = (&'static str, fn() -> Netlist);

/// The one shared table of named built-in circuits. Everything that
/// names circuits — lookup, the unknown-circuit error message, the
/// `export` op, `docs/PROTOCOL.md` (kept honest by the doc-drift gate)
/// — derives from this list, so adding a benchmark cannot drift any of
/// them apart.
const NAMED_CIRCUITS: &[NamedCircuit] = &[
    ("tiny", || benchmarks::tiny_circuit().netlist),
    ("small", || benchmarks::small_circuit().netlist),
    ("lna94", || benchmarks::lna_94ghz().netlist),
    ("buffer60", || benchmarks::buffer_60ghz().netlist),
    ("lna60", || benchmarks::lna_60ghz().netlist),
];

fn circuit_by_name(name: &str) -> Option<Netlist> {
    NAMED_CIRCUITS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, build)| build())
}

/// `tiny/small/lna94/buffer60/lna60`, derived from [`NAMED_CIRCUITS`]
/// for error messages and docs.
fn known_circuit_names() -> String {
    NAMED_CIRCUITS
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join("/")
}

/// The `invalid_netlist` rejection for a wire-format schema failure:
/// the protocol-level code plus the wire-level `detail` code and the
/// field `path` of the offending value.
fn invalid_netlist_response(op: &str, error: &wire::WireError) -> Json {
    ObjectBuilder::new()
        .set("ok", Json::Bool(false))
        .set("op", Json::String(op.to_string()))
        .set(
            "error",
            ObjectBuilder::new()
                .set("code", Json::String("invalid_netlist".into()))
                .set("detail", Json::String(error.code.to_string()))
                .set("path", Json::String(error.path.clone()))
                .set("message", Json::String(error.message.clone()))
                .build(),
        )
        .build()
}

/// Resolves the circuit of a `submit`/`sweep` request: exactly one of
/// `circuit` (a [`NAMED_CIRCUITS`] name) or `netlist` (an inline
/// wire-format document, validated here — before any job is admitted to
/// the pool).
fn requested_netlist(op: &str, request: &Json) -> Result<Netlist, Json> {
    let circuit = request.get("circuit");
    let inline = request.get("netlist");
    match (circuit, inline) {
        (Some(_), Some(_)) => Err(error_response(
            op,
            "bad_request",
            "give either \"circuit\" or \"netlist\", not both",
        )),
        (None, None) => Err(error_response(
            op,
            "bad_request",
            "missing \"circuit\" or \"netlist\"",
        )),
        (Some(value), None) => {
            let Some(name) = value.as_str() else {
                return Err(error_response(
                    op,
                    "bad_request",
                    "circuit must be a string",
                ));
            };
            circuit_by_name(name).ok_or_else(|| {
                error_response(
                    op,
                    "bad_request",
                    &format!("unknown circuit {name:?} ({})", known_circuit_names()),
                )
            })
        }
        (None, Some(document)) => {
            wire::parse_netlist(document).map_err(|e| invalid_netlist_response(op, &e))
        }
    }
}

fn build_config(request: &Json) -> Result<PilpConfig, String> {
    let mut builder = match request.get("config") {
        None => PilpConfig::builder().fast(),
        Some(value) => match value.as_str() {
            Some("fast") => PilpConfig::builder().fast(),
            Some("thorough") => PilpConfig::builder().thorough(),
            Some(other) => return Err(format!("unknown config {other:?} (fast/thorough)")),
            None => return Err("config must be a string".into()),
        },
    };
    if let Some(value) = request.get("deadline_ms") {
        let Some(ms) = value.as_f64() else {
            return Err("deadline_ms must be a number".into());
        };
        if !ms.is_finite() || ms <= 0.0 || ms > MAX_DEADLINE_MS {
            return Err(format!(
                "deadline_ms must be in (0, {MAX_DEADLINE_MS}] milliseconds"
            ));
        }
        builder = builder.deadline(Duration::from_millis(ms as u64));
    }
    if let Some(value) = request.get("threads") {
        let Some(threads) = value.as_f64() else {
            return Err("threads must be a number".into());
        };
        if !threads.is_finite() || threads.fract() != 0.0 || !(0.0..=MAX_THREADS).contains(&threads)
        {
            return Err(format!("threads must be an integer in 0..={MAX_THREADS}"));
        }
        builder = builder.threads(threads as usize);
    }
    Ok(builder.build())
}

fn handle_submit(request: &Json, ctx: &JobContext, next_id: &mut u64) -> (Json, Option<ServedJob>) {
    let mut netlist = match requested_netlist("submit", request) {
        Ok(netlist) => netlist,
        Err(rejection) => return (rejection, None),
    };
    if let Some(value) = request.get("area") {
        let dims = value.as_array().and_then(|area| {
            match (
                area.len(),
                area.first().and_then(Json::as_f64),
                area.get(1).and_then(Json::as_f64),
            ) {
                (2, Some(w), Some(h)) => Some((w, h)),
                _ => None,
            }
        });
        match dims {
            Some((w, h))
                if w.is_finite()
                    && h.is_finite()
                    && w > 0.0
                    && h > 0.0
                    && w <= MAX_AREA_UM
                    && h <= MAX_AREA_UM =>
            {
                netlist = netlist.with_area(w, h)
            }
            _ => {
                return (
                    error_response(
                        "submit",
                        "bad_request",
                        &format!("area must be [width, height], each in (0, {MAX_AREA_UM}] µm"),
                    ),
                    None,
                )
            }
        }
    }
    let config = match build_config(request) {
        Ok(config) => config,
        Err(message) => return (error_response("submit", "bad_request", &message), None),
    };
    let handle = Pilp::new(config).submit_owned_in(netlist.clone(), ctx);
    let id = *next_id;
    *next_id += 1;
    let response = ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("submit".into()))
        .set("job", Json::Number(id as f64))
        .build();
    (
        response,
        Some(ServedJob {
            handle,
            netlist,
            finished_at: None,
        }),
    )
}

/// Extracts a job id, rejecting non-integer and out-of-range values
/// (`-1` must be `unknown_job`-adjacent, never wrap to a live id).
fn job_id(request: &Json) -> Result<u64, String> {
    let Some(value) = request.get("job") else {
        return Err("missing \"job\"".into());
    };
    match value.as_f64() {
        Some(n)
            if n.is_finite()
                && n.fract() == 0.0
                && (0.0..9.007_199_254_740_992e15).contains(&n) =>
        {
            Ok(n as u64)
        }
        _ => Err("job must be a non-negative integer".into()),
    }
}

fn handle_status(job: &ServedJob, id: u64) -> Json {
    let progress = job.handle.progress();
    let (state, code) = match job.handle.poll() {
        None => ("running", None),
        Some(Ok(_)) => ("done", None),
        Some(Err(PilpError::Cancelled)) => ("cancelled", Some("cancelled")),
        Some(Err(e)) => ("failed", Some(error_code(&e))),
    };
    let mut builder = ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("status".into()))
        .set("job", Json::Number(id as f64))
        .set("state", Json::String(state.into()))
        .set("solves", Json::Number(progress.solves as f64));
    if let Some(phase) = progress.phase {
        builder = builder.set("phase", Json::String(phase.to_string()));
    }
    if let Some(code) = code {
        builder = builder.set("error_code", Json::String(code.into()));
    }
    builder.build()
}

fn result_payload(job: &ServedJob, id: u64, request: &Json, result: &PilpResult) -> Json {
    let report = result.report();
    let exact = report
        .strips
        .iter()
        .filter(|s| s.length_error.abs() < 1e-3)
        .count();
    let mut builder = ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("result".into()))
        .set("job", Json::Number(id as f64))
        .set("state", Json::String("done".into()))
        .set("strips", Json::Number(report.strips.len() as f64))
        .set("exact_lengths", Json::Number(exact as f64))
        .set("total_bends", Json::Number(report.total_bends as f64))
        .set("max_length_error_um", Json::Number(report.max_length_error))
        .set("drc_violations", Json::Number(report.drc_violations as f64))
        .set("solves", Json::Number(result.solver.solves as f64))
        .set(
            "simplex_iterations",
            Json::Number(result.solver.simplex_iterations as f64),
        )
        .set(
            "fallback_recoveries",
            Json::Number(result.solver.fallback_recoveries as f64),
        )
        .set(
            "runtime_ms",
            Json::Number(result.runtime.as_secs_f64() * 1e3),
        );
    if request.get("report").and_then(Json::as_bool) == Some(true) {
        builder = builder.set("report", Json::String(report.to_string()));
    }
    if request.get("svg").and_then(Json::as_bool) == Some(true) {
        builder = builder.set(
            "svg",
            Json::String(render::svg(&job.netlist, &result.layout)),
        );
    }
    builder.build()
}

fn handle_result(job: &ServedJob, id: u64, request: &Json) -> Json {
    match job.handle.wait() {
        Ok(result) => result_payload(job, id, request, &result),
        Err(e) => error_response("result", error_code(&e), &e.to_string()),
    }
}

/// Builds the variant netlists of a `sweep` request. Each variant is an
/// object applying any of `target_scale` (multiplies every microstrip
/// target length), `area` (`[w, h]` µm) and `spacing` (the minimum
/// spacing rule, µm) on top of the named base circuit.
fn build_variants(base: &Netlist, value: Option<&Json>) -> Result<Vec<Netlist>, String> {
    let Some(items) = value.and_then(Json::as_array) else {
        return Err("missing \"variants\" (array of objects)".into());
    };
    if items.is_empty() || items.len() > MAX_SWEEP_VARIANTS {
        return Err(format!(
            "variants must hold 1..={MAX_SWEEP_VARIANTS} objects"
        ));
    }
    let mut variants = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let Json::Object(fields) = item else {
            return Err(format!("variant {index} must be an object"));
        };
        for key in fields.keys() {
            if !["target_scale", "area", "spacing"].contains(&key.as_str()) {
                return Err(format!("variant {index}: unknown field {key:?}"));
            }
        }
        let mut netlist = base.clone();
        if let Some(value) = item.get("target_scale") {
            match value.as_f64() {
                Some(scale) if scale.is_finite() && scale > 0.0 && scale <= MAX_TARGET_SCALE => {
                    netlist = netlist.with_target_scale(scale);
                }
                _ => {
                    return Err(format!(
                        "variant {index}: target_scale must be in (0, {MAX_TARGET_SCALE}]"
                    ))
                }
            }
        }
        if let Some(value) = item.get("area") {
            let dims = value.as_array().and_then(|area| {
                match (
                    area.len(),
                    area.first().and_then(Json::as_f64),
                    area.get(1).and_then(Json::as_f64),
                ) {
                    (2, Some(w), Some(h)) => Some((w, h)),
                    _ => None,
                }
            });
            let valid = dims.filter(|&(w, h)| {
                w.is_finite()
                    && h.is_finite()
                    && w > 0.0
                    && h > 0.0
                    && w <= MAX_AREA_UM
                    && h <= MAX_AREA_UM
            });
            let Some((w, h)) = valid else {
                return Err(format!(
                    "variant {index}: area must be [width, height], each in (0, {MAX_AREA_UM}] µm"
                ));
            };
            netlist = netlist.with_area(w, h);
        }
        if let Some(value) = item.get("spacing") {
            match value.as_f64() {
                Some(spacing)
                    if spacing.is_finite() && spacing > 0.0 && spacing <= MAX_SPACING_UM =>
                {
                    // The spacing rule is twice the ground-plane distance.
                    netlist = netlist.with_ground_distance(spacing / 2.0);
                }
                _ => {
                    return Err(format!(
                        "variant {index}: spacing must be in (0, {MAX_SPACING_UM}] µm"
                    ))
                }
            }
        }
        variants.push(netlist);
    }
    Ok(variants)
}

/// Per-variant entry of a `sweep` response (the layout-quality and
/// solver-work subset of a `result` payload).
fn sweep_variant_payload(index: usize, outcome: &Result<PilpResult, PilpError>) -> Json {
    match outcome {
        Ok(result) => {
            let report = result.report();
            let exact = report
                .strips
                .iter()
                .filter(|s| s.length_error.abs() < 1e-3)
                .count();
            ObjectBuilder::new()
                .set("ok", Json::Bool(true))
                .set("variant", Json::Number(index as f64))
                .set("strips", Json::Number(report.strips.len() as f64))
                .set("exact_lengths", Json::Number(exact as f64))
                .set("total_bends", Json::Number(report.total_bends as f64))
                .set("max_length_error_um", Json::Number(report.max_length_error))
                .set("drc_violations", Json::Number(report.drc_violations as f64))
                .set("solves", Json::Number(result.solver.solves as f64))
                .set(
                    "simplex_iterations",
                    Json::Number(result.solver.simplex_iterations as f64),
                )
                .set(
                    "runtime_ms",
                    Json::Number(result.runtime.as_secs_f64() * 1e3),
                )
                .build()
        }
        Err(e) => ObjectBuilder::new()
            .set("ok", Json::Bool(false))
            .set("variant", Json::Number(index as f64))
            .set(
                "error",
                ObjectBuilder::new()
                    .set("code", Json::String(error_code(e).to_string()))
                    .set("message", Json::String(e.to_string()))
                    .build(),
            )
            .build(),
    }
}

/// Runs a `sweep` request to completion: the variants are laid out
/// sequentially in request order on the shared context (that ordering is
/// the structure-reuse fast path — see [`rfic_layout::core::ModelCache`])
/// and the response carries one entry per variant, in order.
fn handle_sweep(request: &Json, ctx: &JobContext) -> Json {
    let base = match requested_netlist("sweep", request) {
        Ok(netlist) => netlist,
        Err(rejection) => return rejection,
    };
    let variants = match build_variants(&base, request.get("variants")) {
        Ok(variants) => variants,
        Err(message) => return error_response("sweep", "bad_request", &message),
    };
    let config = match build_config(request) {
        Ok(config) => config,
        Err(message) => return error_response("sweep", "bad_request", &message),
    };
    let results = Pilp::new(config).submit_sweep_in(&variants, ctx).wait();
    let entries = results
        .iter()
        .enumerate()
        .map(|(index, outcome)| sweep_variant_payload(index, outcome))
        .collect();
    ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("sweep".into()))
        .set("variants", Json::Number(results.len() as f64))
        .set("results", Json::Array(entries))
        .build()
}

/// Schema-checks an inline netlist without scheduling any solver work:
/// the cheap preflight for clients assembling documents by hand. The
/// reported `fingerprint` is the content hash that keys the
/// cross-request caches — two submits with equal fingerprints replay
/// the same cached flow.
fn handle_validate(request: &Json) -> Json {
    let Some(document) = request.get("netlist") else {
        return error_response("validate", "bad_request", "missing \"netlist\"");
    };
    match wire::parse_netlist(document) {
        Err(error) => invalid_netlist_response("validate", &error),
        Ok(netlist) => {
            let pads = netlist.devices().iter().filter(|d| d.is_pad()).count();
            ObjectBuilder::new()
                .set("ok", Json::Bool(true))
                .set("op", Json::String("validate".into()))
                .set("name", Json::String(netlist.name().to_string()))
                .set(
                    "devices",
                    Json::Number((netlist.devices().len() - pads) as f64),
                )
                .set("pads", Json::Number(pads as f64))
                .set("nets", Json::Number(netlist.microstrips().len() as f64))
                .set(
                    "fingerprint",
                    Json::String(format!("{:016x}", netlist.fingerprint())),
                )
                .build()
        }
    }
}

/// Dumps a named benchmark as a wire-format document — the starting
/// point for "export, edit, resubmit" and the generator of the inline
/// examples in `docs/NETLIST_SCHEMA.md`.
fn handle_export(request: &Json) -> Json {
    let Some(name) = request.get("circuit").and_then(Json::as_str) else {
        return error_response("export", "bad_request", "missing \"circuit\"");
    };
    let Some(netlist) = circuit_by_name(name) else {
        return error_response(
            "export",
            "bad_request",
            &format!("unknown circuit {name:?} ({})", known_circuit_names()),
        );
    };
    ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("export".into()))
        .set("circuit", Json::String(name.to_string()))
        .set("netlist", wire::to_json(&netlist))
        .build()
}

/// Timestamps newly finished jobs and evicts those finished longer than
/// `ttl` ago. Evicted ids answer `unknown_job` afterwards.
fn reap_finished(jobs: &mut HashMap<u64, ServedJob>, ttl: Duration) {
    let now = Instant::now();
    for job in jobs.values_mut() {
        if job.finished_at.is_none() && job.handle.progress().done {
            job.finished_at = Some(now);
        }
    }
    jobs.retain(|_, job| match job.finished_at {
        Some(at) => now.duration_since(at) < ttl,
        None => true,
    });
}

/// Unfinished jobs currently admitted (the backpressure measure).
fn active_jobs(jobs: &HashMap<u64, ServedJob>) -> usize {
    jobs.values().filter(|j| j.finished_at.is_none()).count()
}

struct ServeOptions {
    workers: usize,
    max_jobs: usize,
    result_ttl: Duration,
}

fn parse_args() -> ServeOptions {
    let mut options = ServeOptions {
        workers: 0, // 0 = hardware parallelism (capped by the pool)
        max_jobs: DEFAULT_MAX_JOBS,
        result_ttl: Duration::from_secs(DEFAULT_RESULT_TTL_SECS),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |flag: &str| match args.next().and_then(|v| v.parse::<u64>().ok()) {
            Some(n) => n,
            None => {
                eprintln!("serve: {flag} needs a non-negative number");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--workers" => options.workers = numeric("--workers") as usize,
            "--max-jobs" => options.max_jobs = (numeric("--max-jobs") as usize).max(1),
            "--result-ttl-secs" => {
                options.result_ttl = Duration::from_secs(numeric("--result-ttl-secs"))
            }
            "--help" | "-h" => {
                println!(
                    "serve [--workers N] [--max-jobs N] [--result-ttl-secs S]  \
                     (line-delimited JSON on stdin/stdout)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("serve: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    options
}

fn main() {
    let options = parse_args();
    let ctx = JobContext::new(options.workers);
    let mut jobs: HashMap<u64, ServedJob> = HashMap::new();
    let mut next_id = 1u64;
    let mut draining = false;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        reap_finished(&mut jobs, options.result_ttl);
        // The raised cap keys off the raw line so an oversized request
        // is rejected before the JSON parser ever touches it.
        let line_cap = if line.contains("\"netlist\"") {
            MAX_NETLIST_LINE_BYTES
        } else {
            MAX_LINE_BYTES
        };
        if line.len() > line_cap {
            let response = error_response(
                "?",
                "line_too_long",
                &format!("request line exceeds {line_cap} bytes"),
            );
            let _ = writeln!(out, "{response}");
            let _ = out.flush();
            continue;
        }
        let request = match parse(&line) {
            Ok(request) => request,
            Err(message) => {
                let response = error_response("?", "bad_request", &format!("bad JSON: {message}"));
                let _ = writeln!(out, "{response}");
                let _ = out.flush();
                continue;
            }
        };
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        let mut shutdown = false;
        let response = match op {
            "submit" => {
                if let Some(rejected) = check_fields(
                    op,
                    &request,
                    &[
                        "op",
                        "circuit",
                        "netlist",
                        "config",
                        "deadline_ms",
                        "threads",
                        "area",
                    ],
                ) {
                    rejected
                } else if draining {
                    error_response(op, "shutting_down", "service is draining; no new jobs")
                } else if active_jobs(&jobs) >= options.max_jobs {
                    error_response(
                        op,
                        "backpressure",
                        &format!("{} jobs already in flight (--max-jobs)", options.max_jobs),
                    )
                } else {
                    let (response, job) = handle_submit(&request, &ctx, &mut next_id);
                    if let Some(job) = job {
                        jobs.insert(next_id - 1, job);
                    }
                    response
                }
            }
            "sweep" => {
                if let Some(rejected) = check_fields(
                    op,
                    &request,
                    &[
                        "op",
                        "circuit",
                        "netlist",
                        "variants",
                        "config",
                        "deadline_ms",
                        "threads",
                    ],
                ) {
                    rejected
                } else if draining {
                    error_response(op, "shutting_down", "service is draining; no new jobs")
                } else {
                    handle_sweep(&request, &ctx)
                }
            }
            // Pure schema/document ops: no job is scheduled, so they
            // stay available while the service drains.
            "validate" => match check_fields(op, &request, &["op", "netlist"]) {
                Some(rejected) => rejected,
                None => handle_validate(&request),
            },
            "export" => match check_fields(op, &request, &["op", "circuit"]) {
                Some(rejected) => rejected,
                None => handle_export(&request),
            },
            "status" | "result" | "cancel" => {
                let allowed: &[&str] = if op == "result" {
                    &["op", "job", "report", "svg"]
                } else {
                    &["op", "job"]
                };
                if let Some(rejected) = check_fields(op, &request, allowed) {
                    rejected
                } else {
                    match job_id(&request) {
                        Err(message) => error_response(op, "bad_request", &message),
                        Ok(id) => match jobs.get(&id) {
                            None => error_response(op, "unknown_job", &format!("no job {id}")),
                            Some(job) => match op {
                                "status" => handle_status(job, id),
                                "result" => handle_result(job, id, &request),
                                _ => {
                                    job.handle.cancel();
                                    ObjectBuilder::new()
                                        .set("ok", Json::Bool(true))
                                        .set("op", Json::String("cancel".into()))
                                        .set("job", Json::Number(id as f64))
                                        .build()
                                }
                            },
                        },
                    }
                }
            }
            "shutdown" => match check_fields(op, &request, &["op", "drain"]) {
                Some(rejected) => rejected,
                None => {
                    let drain = request.get("drain").and_then(Json::as_bool) == Some(true);
                    if drain {
                        draining = true;
                    } else {
                        shutdown = true;
                    }
                    let mut builder = ObjectBuilder::new()
                        .set("ok", Json::Bool(true))
                        .set("op", Json::String("shutdown".into()));
                    if drain {
                        builder = builder.set("draining", Json::Bool(true));
                    }
                    builder.build()
                }
            },
            other => error_response(
                other,
                "bad_request",
                "op must be submit/sweep/validate/export/status/result/cancel/shutdown",
            ),
        };
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
        if shutdown {
            break;
        }
        if draining && jobs.values().all(|j| j.handle.progress().done) {
            break;
        }
    }

    // Clean shutdown. An immediate shutdown cancels whatever is still
    // running so the pool drains promptly; a drain shutdown lets the
    // in-flight jobs run to completion first.
    if !draining {
        for job in jobs.values() {
            job.handle.cancel();
        }
    }
    for job in jobs.values() {
        let _ = job.handle.wait();
    }
    ctx.shutdown();
}
