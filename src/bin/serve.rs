//! `serve` — a line-delimited JSON layout service over stdin/stdout.
//!
//! Each input line is one request object; each output line is one
//! response object. All submitted jobs share a single
//! [`rfic_layout::core::JobContext`] — one solver pool, one solve-site
//! cache — so N concurrent requests multiplex a fixed worker set instead
//! of oversubscribing the machine.
//!
//! ## Requests
//!
//! | op         | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `submit`   | `circuit` (`tiny`/`small`/`lna94`/`buffer60`/`lna60`), optional `config` (`fast`*/`thorough`), `deadline_ms`, `threads`, `area` (`[w,h]` µm) |
//! | `status`   | `job`                                                         |
//! | `result`   | `job` (blocks until done), optional `report`/`svg` booleans   |
//! | `cancel`   | `job`                                                         |
//! | `shutdown` | —                                                             |
//!
//! ## Example
//!
//! ```text
//! $ printf '%s\n' \
//!     '{"op":"submit","circuit":"tiny"}' \
//!     '{"op":"result","job":1}' \
//!     '{"op":"shutdown"}' | serve
//! {"job":1,"ok":true,"op":"submit"}
//! {"drc_violations":0,"exact_lengths":3,...,"ok":true,"op":"result","state":"done"}
//! {"ok":true,"op":"shutdown"}
//! ```
//!
//! Failures are `{"ok":false,"error":{"code":...,"message":...}}`; job
//! failures map [`PilpError`] variants to stable protocol codes
//! (`cancelled`, `deadline_exceeded`, `pool_shutdown`, `invalid_netlist`,
//! `phase_failed`).

use std::collections::HashMap;
use std::io::{BufRead, Write};

use rfic_layout::core::{render, JobContext, JobHandle, Pilp, PilpConfig, PilpError, PilpResult};
use rfic_layout::netlist::{benchmarks, Netlist};
use rfic_layout::protocol::{parse, Json, ObjectBuilder};

/// One submitted job: the handle plus the netlist it was built from
/// (needed to render SVG and count strips for the result payload).
struct ServedJob {
    handle: JobHandle,
    netlist: Netlist,
}

/// Stable protocol error code for a flow error.
fn error_code(error: &PilpError) -> &'static str {
    match error {
        PilpError::Cancelled => "cancelled",
        PilpError::DeadlineExceeded => "deadline_exceeded",
        PilpError::PoolShutdown => "pool_shutdown",
        PilpError::InvalidNetlist(_) => "invalid_netlist",
        _ => "phase_failed",
    }
}

fn error_response(op: &str, code: &str, message: &str) -> Json {
    ObjectBuilder::new()
        .set("ok", Json::Bool(false))
        .set("op", Json::String(op.to_string()))
        .set(
            "error",
            ObjectBuilder::new()
                .set("code", Json::String(code.to_string()))
                .set("message", Json::String(message.to_string()))
                .build(),
        )
        .build()
}

fn circuit_by_name(name: &str) -> Option<Netlist> {
    let netlist = match name {
        "tiny" => benchmarks::tiny_circuit().netlist,
        "small" => benchmarks::small_circuit().netlist,
        "lna94" => benchmarks::lna_94ghz().netlist,
        "buffer60" => benchmarks::buffer_60ghz().netlist,
        "lna60" => benchmarks::lna_60ghz().netlist,
        _ => return None,
    };
    Some(netlist)
}

fn build_config(request: &Json) -> Result<PilpConfig, String> {
    let mut builder = match request.get("config").and_then(Json::as_str) {
        None | Some("fast") => PilpConfig::builder().fast(),
        Some("thorough") => PilpConfig::builder().thorough(),
        Some(other) => return Err(format!("unknown config {other:?} (fast/thorough)")),
    };
    if let Some(ms) = request.get("deadline_ms").and_then(Json::as_f64) {
        if ms <= 0.0 || ms.is_nan() {
            return Err("deadline_ms must be positive".into());
        }
        builder = builder.deadline(std::time::Duration::from_millis(ms as u64));
    }
    if let Some(threads) = request.get("threads").and_then(Json::as_f64) {
        builder = builder.threads(threads as usize);
    }
    Ok(builder.build())
}

fn handle_submit(request: &Json, ctx: &JobContext, next_id: &mut u64) -> (Json, Option<ServedJob>) {
    let Some(name) = request.get("circuit").and_then(Json::as_str) else {
        return (
            error_response("submit", "bad_request", "missing \"circuit\""),
            None,
        );
    };
    let Some(mut netlist) = circuit_by_name(name) else {
        return (
            error_response(
                "submit",
                "bad_request",
                &format!("unknown circuit {name:?} (tiny/small/lna94/buffer60/lna60)"),
            ),
            None,
        );
    };
    if let Some(area) = request.get("area").and_then(Json::as_array) {
        match (
            area.first().and_then(Json::as_f64),
            area.get(1).and_then(Json::as_f64),
        ) {
            (Some(w), Some(h)) if w > 0.0 && h > 0.0 => netlist = netlist.with_area(w, h),
            _ => {
                return (
                    error_response("submit", "bad_request", "area must be [width, height] µm"),
                    None,
                )
            }
        }
    }
    let config = match build_config(request) {
        Ok(config) => config,
        Err(message) => return (error_response("submit", "bad_request", &message), None),
    };
    let handle = Pilp::new(config).submit_in(&netlist, ctx);
    let id = *next_id;
    *next_id += 1;
    let response = ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("submit".into()))
        .set("job", Json::Number(id as f64))
        .build();
    (response, Some(ServedJob { handle, netlist }))
}

fn job_id(request: &Json) -> Option<u64> {
    request.get("job").and_then(Json::as_f64).map(|n| n as u64)
}

fn handle_status(job: &ServedJob, id: u64) -> Json {
    let progress = job.handle.progress();
    let (state, code) = match job.handle.poll() {
        None => ("running", None),
        Some(Ok(_)) => ("done", None),
        Some(Err(PilpError::Cancelled)) => ("cancelled", Some("cancelled")),
        Some(Err(e)) => ("failed", Some(error_code(&e))),
    };
    let mut builder = ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("status".into()))
        .set("job", Json::Number(id as f64))
        .set("state", Json::String(state.into()))
        .set("solves", Json::Number(progress.solves as f64));
    if let Some(phase) = progress.phase {
        builder = builder.set("phase", Json::String(phase.to_string()));
    }
    if let Some(code) = code {
        builder = builder.set("error_code", Json::String(code.into()));
    }
    builder.build()
}

fn result_payload(job: &ServedJob, id: u64, request: &Json, result: &PilpResult) -> Json {
    let report = result.report();
    let exact = report
        .strips
        .iter()
        .filter(|s| s.length_error.abs() < 1e-3)
        .count();
    let mut builder = ObjectBuilder::new()
        .set("ok", Json::Bool(true))
        .set("op", Json::String("result".into()))
        .set("job", Json::Number(id as f64))
        .set("state", Json::String("done".into()))
        .set("strips", Json::Number(report.strips.len() as f64))
        .set("exact_lengths", Json::Number(exact as f64))
        .set("total_bends", Json::Number(report.total_bends as f64))
        .set("max_length_error_um", Json::Number(report.max_length_error))
        .set("drc_violations", Json::Number(report.drc_violations as f64))
        .set("solves", Json::Number(result.solver.solves as f64))
        .set(
            "simplex_iterations",
            Json::Number(result.solver.simplex_iterations as f64),
        )
        .set(
            "runtime_ms",
            Json::Number(result.runtime.as_secs_f64() * 1e3),
        );
    if request.get("report").and_then(Json::as_bool) == Some(true) {
        builder = builder.set("report", Json::String(report.to_string()));
    }
    if request.get("svg").and_then(Json::as_bool) == Some(true) {
        builder = builder.set(
            "svg",
            Json::String(render::svg(&job.netlist, &result.layout)),
        );
    }
    builder.build()
}

fn handle_result(job: &ServedJob, id: u64, request: &Json) -> Json {
    match job.handle.wait() {
        Ok(result) => result_payload(job, id, request, &result),
        Err(e) => error_response("result", error_code(&e), &e.to_string()),
    }
}

fn main() {
    let mut workers = 0usize; // 0 = hardware parallelism (capped by the pool)
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = n,
                None => {
                    eprintln!("serve: --workers needs a number");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("serve [--workers N]  (line-delimited JSON on stdin/stdout)");
                return;
            }
            other => {
                eprintln!("serve: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let ctx = JobContext::new(workers);
    let mut jobs: HashMap<u64, ServedJob> = HashMap::new();
    let mut next_id = 1u64;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse(&line) {
            Ok(request) => request,
            Err(message) => {
                let response = error_response("?", "bad_request", &format!("bad JSON: {message}"));
                let _ = writeln!(out, "{response}");
                let _ = out.flush();
                continue;
            }
        };
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        let mut shutdown = false;
        let response = match op {
            "submit" => {
                let (response, job) = handle_submit(&request, &ctx, &mut next_id);
                if let Some(job) = job {
                    jobs.insert(next_id - 1, job);
                }
                response
            }
            "status" | "result" | "cancel" => match job_id(&request) {
                None => error_response(op, "bad_request", "missing \"job\""),
                Some(id) => match jobs.get(&id) {
                    None => error_response(op, "unknown_job", &format!("no job {id}")),
                    Some(job) => match op {
                        "status" => handle_status(job, id),
                        "result" => handle_result(job, id, &request),
                        _ => {
                            job.handle.cancel();
                            ObjectBuilder::new()
                                .set("ok", Json::Bool(true))
                                .set("op", Json::String("cancel".into()))
                                .set("job", Json::Number(id as f64))
                                .build()
                        }
                    },
                },
            },
            "shutdown" => {
                shutdown = true;
                ObjectBuilder::new()
                    .set("ok", Json::Bool(true))
                    .set("op", Json::String("shutdown".into()))
                    .build()
            }
            other => error_response(
                other,
                "bad_request",
                "op must be submit/status/result/cancel/shutdown",
            ),
        };
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
        if shutdown {
            break;
        }
    }

    // Clean shutdown: cancel whatever is still running so the pool drains
    // promptly, then stop the workers.
    for job in jobs.values() {
        job.handle.cancel();
    }
    for job in jobs.values() {
        let _ = job.handle.wait();
    }
    ctx.shutdown();
}
