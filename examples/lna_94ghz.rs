//! The 94 GHz LNA benchmark circuit: inspect the generated netlist, evaluate
//! the manual-style baseline and (optionally) run the full P-ILP flow on it.
//!
//! Run with `cargo run --release --example lna_94ghz` for the baseline
//! analysis, or `cargo run --release --example lna_94ghz -- --full` to also
//! run the complete P-ILP layout generation (several minutes, comparable to
//! the runtime column of Table 1).

use std::time::Duration;

use rfic_layout::baseline::manual::manual_report;
use rfic_layout::core::{Pilp, PilpConfig};
use rfic_layout::em::{evaluate_layout, frequency_sweep, AmplifierSpec};
use rfic_layout::netlist::benchmarks::{AreaSetting, BenchmarkCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = BenchmarkCircuit::Lna94Ghz;
    let circuit = bench.circuit();
    let stats = circuit.netlist.stats();
    println!(
        "{}: {} microstrips, {} devices, {} pads, area {:.0} x {:.0} µm (reduced setting {:.0} x {:.0})",
        bench,
        stats.num_microstrips,
        stats.num_devices,
        stats.num_pads,
        stats.area_width,
        stats.area_height,
        bench.area(AreaSetting::Reduced).0,
        bench.area(AreaSetting::Reduced).1,
    );

    // Manual-style baseline (the meander-heavy witness layout).
    let manual = manual_report(&circuit, 2);
    println!(
        "\nmanual baseline: max bends {}, total bends {}",
        manual.max_bends, manual.total_bends
    );

    // RF evaluation of the manual layout around 94 GHz.
    let layout = rfic_layout::baseline::manual_layout(&circuit);
    let spec = AmplifierSpec::lna(bench.operating_frequency_ghz());
    let sweep = evaluate_layout(
        &circuit.netlist,
        &layout,
        &spec,
        &frequency_sweep(80.0, 108.0, 15),
    );
    println!("\nfreq (GHz)   S11 (dB)   S21 (dB)   S22 (dB)");
    for p in &sweep {
        println!(
            "{:>9.1} {:>10.2} {:>10.2} {:>10.2}",
            p.freq_ghz, p.s11_db, p.s21_db, p.s22_db
        );
    }

    if std::env::args().any(|a| a == "--full") {
        println!("\nrunning the full P-ILP flow (this takes several minutes) ...");
        let config = PilpConfig {
            solve_time_limit: Duration::from_secs(15),
            // Parallel node search for the big refinement MILPs, and a
            // larger per-solve budget for Phase 3 only (routing stays on
            // the default budget — its many blurred solves are cheap).
            solver_threads: 0, // all available cores
            phase_budgets: rfic_layout::core::PhaseBudgets {
                refinement: Some(Duration::from_secs(30)),
                ..Default::default()
            },
            ..PilpConfig::thorough()
        };
        let result = Pilp::new(config).run(&circuit.netlist)?;
        println!("{}", result.report());
        println!(
            "P-ILP vs manual: total bends {} vs {}, runtime {:.1?} vs > 2 weeks",
            result.layout.total_bends(),
            layout.total_bends(),
            result.runtime
        );
    } else {
        println!("\n(pass --full to run the complete P-ILP layout generation on this circuit)");
    }
    Ok(())
}
