//! Quickstart: generate a tiny RF circuit, run the P-ILP layout flow and
//! print the resulting layout and quality report.
//!
//! Run with `cargo run --release --example quickstart`.

use rfic_layout::core::{render, Pilp, PilpConfig};
use rfic_layout::netlist::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small two-transistor circuit with three microstrips whose exact
    // lengths must be realised in a 380 x 320 µm area.
    let circuit = benchmarks::tiny_circuit();
    let netlist = &circuit.netlist;
    println!("input circuit: {netlist}");
    for strip in netlist.microstrips() {
        println!("  {strip}");
    }

    // Run the three-phase progressive ILP flow.
    let result = Pilp::new(PilpConfig::fast()).run(netlist)?;

    println!("\nfinished in {:.1?}", result.runtime);
    for snapshot in &result.snapshots {
        println!(
            "  {}: {} bends, worst length error {:.3} µm",
            snapshot.phase, snapshot.total_bends, snapshot.max_length_error
        );
    }
    println!("\n{}", result.report());
    println!("{}", render::ascii(netlist, &result.layout, 90));
    println!(
        "manual-style witness layout for comparison: {} bends",
        circuit.witness.total_bends()
    );
    Ok(())
}
