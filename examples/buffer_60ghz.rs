//! The 60 GHz buffer benchmark: compares the manual-style baseline against
//! the sequential floorplan-then-route flow (prior-work style) and shows why
//! a non-concurrent flow cannot maintain the exact microstrip lengths.
//!
//! Run with `cargo run --release --example buffer_60ghz`.

use rfic_layout::baseline::{manual_layout, sequential_layout, SequentialOptions};
use rfic_layout::core::{drc_check, DrcOptions, LayoutReport};
use rfic_layout::em::{evaluate_layout, AmplifierSpec};
use rfic_layout::netlist::benchmarks::BenchmarkCircuit;
use std::time::Duration;

fn main() {
    let bench = BenchmarkCircuit::Buffer60Ghz;
    let circuit = bench.circuit();
    let netlist = &circuit.netlist;
    println!("{}", netlist);

    // Manual-style baseline: exact lengths, many bends.
    let manual = manual_layout(&circuit);
    let manual_report = LayoutReport::new(netlist, &manual, Duration::from_secs(7 * 24 * 3600));
    println!(
        "\nmanual baseline:     total bends {:>3}, worst length error {:>8.3} µm, DRC {}",
        manual_report.total_bends,
        manual_report.max_length_error,
        if manual_report.drc_clean {
            "clean"
        } else {
            "violated"
        }
    );

    // Sequential floorplan-then-route baseline: planar, but lengths are
    // whatever the maze router produced.
    let sequential = sequential_layout(netlist, &SequentialOptions::default());
    let seq_report = LayoutReport::new(netlist, &sequential, Duration::from_secs(1));
    println!(
        "sequential baseline: total bends {:>3}, worst length error {:>8.3} µm, DRC {}",
        seq_report.total_bends,
        seq_report.max_length_error,
        if seq_report.drc_clean {
            "clean"
        } else {
            "violated"
        }
    );
    let drc = drc_check(netlist, &sequential, &DrcOptions::default());
    println!("sequential DRC violations: {}", drc.len());

    // The RF consequence of the unmatched lengths at 60 GHz.
    let spec = AmplifierSpec::buffer(60.0);
    let manual_gain = evaluate_layout(netlist, &manual, &spec, &[60.0])[0].s21_db;
    let seq_gain = evaluate_layout(netlist, &sequential, &spec, &[60.0])[0].s21_db;
    println!(
        "\ngain at 60 GHz: manual {:.2} dB vs sequential {:.2} dB (length mismatch detunes the matching networks)",
        manual_gain, seq_gain
    );
}
