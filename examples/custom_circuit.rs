//! Building a custom RFIC layout problem from scratch with the netlist
//! builder API and laying it out with P-ILP.
//!
//! Run with `cargo run --release --example custom_circuit`.

use rfic_layout::core::{Pilp, PilpConfig};
use rfic_layout::geom::Point;
use rfic_layout::netlist::{DeviceKind, NetlistBuilder, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A single-stage 60 GHz amplifier cell in a 400 x 300 µm area.
    let tech = Technology::cmos90();
    let mut builder = NetlistBuilder::new("custom single-stage amplifier", tech, 400.0, 300.0);

    let rf_in = builder.add_pad("RF_IN", 60.0);
    let rf_out = builder.add_pad("RF_OUT", 60.0);
    let m1 = builder.add_device(
        "M1",
        DeviceKind::Transistor,
        36.0,
        28.0,
        vec![
            ("gate", Point::new(-18.0, 0.0)),
            ("drain", Point::new(18.0, 0.0)),
            ("source", Point::new(0.0, -14.0)),
        ],
    );
    let c_out = builder.add_device(
        "C1",
        DeviceKind::Capacitor,
        24.0,
        24.0,
        vec![("a", Point::new(-12.0, 0.0)), ("b", Point::new(12.0, 0.0))],
    );

    // Exact microstrip lengths from the (hypothetical) circuit design.
    builder.connect("TL_in", (rf_in, 0), (m1, 0), 170.0)?;
    builder.connect("TL_inter", (m1, 1), (c_out, 0), 120.0)?;
    builder.connect("TL_out", (c_out, 1), (rf_out, 0), 140.0)?;
    let netlist = builder.build()?;
    println!("{netlist}");

    let result = Pilp::new(PilpConfig::fast()).run(&netlist)?;
    println!("\n{}", result.report());
    for strip in netlist.microstrips() {
        let route = result.layout.route(strip.id).expect("routed");
        println!(
            "{}: target {:.1} µm, achieved {:.3} µm, {} bends, {} chain points",
            strip.name,
            strip.target_length,
            result
                .layout
                .equivalent_length(&netlist, strip.id)
                .unwrap_or(f64::NAN),
            route.bend_count(),
            route.num_chain_points(),
        );
    }
    Ok(())
}
